package engine

import (
	"context"
	"encoding/json"
	"fmt"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/traj"
	"dlinfma/internal/wal"
)

// WAL record kinds. A record is one acknowledged ingest operation: a batch
// window, one streamed point, or one explicit stream end. Replaying the
// records through the same code paths the live operations took reproduces
// the ingest state deterministically (the stream extractor and the pool
// builder are both deterministic functions of their input order).
const (
	walKindIngest = "ingest"
	walKindPoint  = "pt"
	walKindEnd    = "end"
)

// walRecord is the JSON payload of one WAL entry. Batch fields and point
// fields are disjoint by Kind; integer map keys round-trip through JSON's
// stringified-key encoding exactly like the snapshot format.
type walRecord struct {
	Kind    string                        `json:"k"`
	Trips   []model.Trip                  `json:"trips,omitempty"`
	Addrs   []model.AddressInfo           `json:"addrs,omitempty"`
	Truth   map[model.AddressID]geo.Point `json:"truth,omitempty"`
	Courier model.CourierID               `json:"c,omitempty"`
	X       float64                       `json:"x,omitempty"`
	Y       float64                       `json:"y,omitempty"`
	T       float64                       `json:"t,omitempty"`
}

func encodeWALIngest(trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) []byte {
	return mustEncodeWAL(&walRecord{Kind: walKindIngest, Trips: trips, Addrs: addrs, Truth: truth})
}

func encodeWALPoint(courier model.CourierID, pt traj.GPSPoint) []byte {
	return mustEncodeWAL(&walRecord{Kind: walKindPoint, Courier: courier, X: pt.P.X, Y: pt.P.Y, T: pt.T})
}

func encodeWALEnd(courier model.CourierID) []byte {
	return mustEncodeWAL(&walRecord{Kind: walKindEnd, Courier: courier})
}

// mustEncodeWAL marshals a record; every field is a plain value type, so a
// marshal error is a programming bug, not a runtime condition.
func mustEncodeWAL(rec *walRecord) []byte {
	b, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("engine: marshal wal record: %v", err))
	}
	return b
}

// replayWAL drives one full WAL replay through apply, decoding each record
// and bubbling the first failure with its sequence number. Both engine
// shapes share it.
func replayWAL(ctx context.Context, w *wal.WAL, apply func(ctx context.Context, seq uint64, rec *walRecord) error) (int, error) {
	ctx, tsp := trace.Start(ctx, "engine.wal_replay")
	defer tsp.End()
	n := 0
	err := w.Replay(func(seq uint64, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("engine: wal record %d: %w", seq, err)
		}
		if err := apply(ctx, seq, &rec); err != nil {
			return fmt.Errorf("engine: wal record %d: %w", seq, err)
		}
		n++
		return nil
	})
	tsp.SetAttr("records", n)
	if err != nil {
		tsp.RecordError(err)
	}
	return n, err
}

// AttachWAL makes w the engine's write-ahead log: from now on every accepted
// ingest operation is appended (points and stream ends before they mutate
// state, batch windows after they apply so a rejected or cancelled window
// never pollutes the log). Attach after ReplayWAL so replayed records are
// not re-appended.
func (e *Engine) AttachWAL(w *wal.WAL) {
	e.mu.Lock()
	e.wal = w
	e.mu.Unlock()
}

// ReplayWAL re-applies every record of w on top of whatever the engine
// already holds (typically a restored snapshot's serving state), rebuilding
// the ingest state — accumulated trips, candidate pool windows, open courier
// streams — that snapshots deliberately omit. It returns the number of
// records applied. Replayed operations bypass backpressure and are not
// re-logged.
func (e *Engine) ReplayWAL(ctx context.Context, w *wal.WAL) (int, error) {
	return replayWAL(ctx, w, e.applyWALRecord)
}

func (e *Engine) applyWALRecord(ctx context.Context, seq uint64, rec *walRecord) error {
	switch rec.Kind {
	case walKindIngest:
		return e.ingest(ctx, rec.Trips, rec.Addrs, rec.Truth, false)
	case walKindPoint:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.ingestPointLocked(ctx, rec.Courier, traj.GPSPoint{P: geo.Point{X: rec.X, Y: rec.Y}, T: rec.T}, seq, false)
	case walKindEnd:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.closeStreamLocked(ctx, rec.Courier, false)
	default:
		return errUnknownWALKind(rec.Kind)
	}
}

// errUnknownWALKind rejects a record kind neither engine shape understands —
// a log written by a newer build; refusing beats silently dropping ingest.
func errUnknownWALKind(kind string) error {
	return fmt.Errorf("unknown wal record kind %q", kind)
}

// walBoundary computes the highest WAL sequence a re-inference starting now
// will cover: everything appended so far, held back below the first point of
// any still-open courier stream (those points are not in the dataset
// snapshot and must survive a crash). 0 means nothing may be truncated.
// Callers hold their ingest lock so no append races the reading.
func walBoundary(w *wal.WAL, ss *streamSet) uint64 {
	if w == nil {
		return 0
	}
	boundary := w.LastSeq()
	min, ok := ss.minOpenSeq()
	if !ok {
		return 0
	}
	if min > 0 && min-1 < boundary {
		boundary = min - 1
	}
	return boundary
}

// walBoundaryLocked is walBoundary over the single engine's state; the
// caller holds e.mu.
func (e *Engine) walBoundaryLocked() uint64 { return walBoundary(e.wal, e.ss) }

// maybeTruncateWAL drops WAL segments wholly covered by the last completed
// re-inference, after the serving state reached durable storage. Best
// effort: a failed truncation only delays space reclamation.
func (e *Engine) maybeTruncateWAL() {
	e.mu.Lock()
	w, seq := e.wal, e.reinferSeq
	e.mu.Unlock()
	if w != nil && seq > 0 {
		_ = w.TruncateThrough(seq)
	}
}
