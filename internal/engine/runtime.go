package engine

import (
	"context"
	"io"

	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/wal"
)

// Runtime is the full lifecycle surface shared by the single Engine and the
// ShardedEngine: everything deploy.Engine serves over HTTP plus the batch /
// persistence operations cmd/dlinfma drives directly. Callers pick the shape
// at startup (-shards) and use the rest of the lifecycle identically.
type Runtime interface {
	deploy.Engine
	// Both engine shapes serve the native bulk read path: the sharded form
	// scatter/gathers across shards, the single form answers from one
	// frozen-store load.
	deploy.BatchQuerier
	// Both shapes accept point-by-point trajectory streaming with WAL-backed
	// durability and backpressure.
	deploy.StreamIngestor

	SetName(name string)
	IngestDataset(ctx context.Context, ds *model.Dataset) error
	Reinfer(ctx context.Context) error
	InferredLocations() map[model.AddressID]geo.Point
	RestoreSnapshot(r io.Reader) error
	SaveSnapshotFile(path string) error
	LoadSnapshotFile(path string) error
	// AttachWAL starts logging every accepted ingest operation to w;
	// ReplayWAL re-applies a log on top of the current (typically
	// just-restored) state. Boot order: restore snapshot, ReplayWAL,
	// AttachWAL, serve.
	AttachWAL(w *wal.WAL)
	ReplayWAL(ctx context.Context, w *wal.WAL) (int, error)
	Close()
}

var (
	_ Runtime = (*Engine)(nil)
	_ Runtime = (*ShardedEngine)(nil)
)
