package engine

import (
	"context"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
	"dlinfma/internal/traj"
)

// StreamConfig bounds the online point-by-point ingest path: how a courier's
// open trajectory is cut into trips and how streamed trips are grouped into
// pool windows. The zero value means "use the defaults" everywhere.
type StreamConfig struct {
	// TripGapSeconds closes a courier's open trip when the gap between two
	// consecutive fixes reaches it (0 = 600, ten minutes — longer than any
	// in-trip sampling gap, shorter than the break between delivery trips).
	TripGapSeconds float64
	// WindowSeconds is the streamed pool-window length. 0 inherits
	// Core.PoolWindowSeconds (itself defaulting to the paper's bi-weekly 14
	// days), so streamed and batch ingest seal on the same grid.
	WindowSeconds float64
	// MaxWindowStays additionally seals the open window once it holds this
	// many stay points, bounding the memory and clustering cost of one seal
	// regardless of wall time (0 = 4096).
	MaxWindowStays int
}

// withDefaults resolves the zero values against the engine's core config.
func (c StreamConfig) withDefaults(poolWindow float64) StreamConfig {
	if c.TripGapSeconds <= 0 {
		c.TripGapSeconds = 600
	}
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = poolWindow
	}
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 14 * 86400
	}
	if c.MaxWindowStays <= 0 {
		c.MaxWindowStays = 4096
	}
	return c
}

// courierStream is one courier's open trip: the raw fixes accepted so far,
// the incremental stay-point extractor consuming them, and the stay points
// it has closed. firstSeq remembers the WAL sequence of the trip's first
// point so re-inference never truncates a segment a still-open trip needs
// for crash recovery.
type courierStream struct {
	courier  model.CourierID
	ex       *traj.StreamExtractor
	pts      traj.Trajectory
	stays    []traj.StayPoint
	firstSeq uint64
	lastT    float64
}

// streamedTrip is one closed trip leaving the stream layer: the assembled
// model.Trip (full raw trajectory, no waybills — streamed fixes carry none),
// its extracted stay points, and the WAL sequence of its first point.
type streamedTrip struct {
	trip     model.Trip
	stays    []traj.StayPoint
	firstSeq uint64
}

// streamSet tracks every courier's open trajectory stream plus the open
// streamed pool window. Both engine shapes embed exactly one: the single
// Engine's lives under its ingest mutex, the sharded engine keeps one global
// set so trip cutting and window boundaries match what one unsharded engine
// would compute. Not safe for concurrent use; the owner's lock serializes.
type streamSet struct {
	cfg     StreamConfig
	noise   traj.NoiseFilterConfig
	stay    traj.StayPointConfig
	streams map[model.CourierID]*courierStream
	// winEnd / winStays track the open streamed window: end of the current
	// window grid cell (0 before the first streamed trip) and stay points
	// delivered into it so far.
	winEnd   float64
	winStays int
}

// newStreamSet builds a stream set whose extraction parameters come from the
// same core config the batch path uses — the bit-identity contract between
// streamed and batch ingest starts here.
func newStreamSet(cfg StreamConfig, coreCfg core.Config) *streamSet {
	return &streamSet{
		cfg:     cfg.withDefaults(coreCfg.PoolWindowSeconds),
		noise:   coreCfg.Noise,
		stay:    coreCfg.Stay,
		streams: make(map[model.CourierID]*courierStream),
	}
}

// point feeds one fix into the courier's stream, opening one if needed. If
// the gap rule closes the previous trip, the closed trip is returned (the
// new fix has already been accepted into a fresh stream).
func (ss *streamSet) point(courier model.CourierID, pt traj.GPSPoint) *streamedTrip {
	var closed *streamedTrip
	cs := ss.streams[courier]
	if cs != nil && pt.T-cs.lastT >= ss.cfg.TripGapSeconds {
		closed = ss.finish(cs, streamTripsGap)
		cs = nil
	}
	if cs == nil {
		cs = &courierStream{courier: courier, ex: traj.NewStreamExtractor(ss.noise, ss.stay)}
		ss.streams[courier] = cs
		openStreamsGauge.Set(float64(len(ss.streams)))
	}
	cs.pts = append(cs.pts, pt)
	cs.stays = append(cs.stays, cs.ex.Push(pt)...)
	cs.lastT = pt.T
	streamPoints.Inc()
	return closed
}

// end closes the courier's open trip explicitly; nil if none is open (an
// end marker with no stream is an idempotent no-op).
func (ss *streamSet) end(courier model.CourierID) *streamedTrip {
	cs := ss.streams[courier]
	if cs == nil {
		return nil
	}
	return ss.finish(cs, streamTripsEnd)
}

// noteSeq records the WAL sequence of the point just accepted on the
// courier's open stream; only the first point's sequence sticks. seq 0 means
// "no WAL attached" and is ignored.
func (ss *streamSet) noteSeq(courier model.CourierID, seq uint64) {
	if seq == 0 {
		return
	}
	if cs := ss.streams[courier]; cs != nil && cs.firstSeq == 0 {
		cs.firstSeq = seq
	}
}

// open reports how many courier streams are currently open.
func (ss *streamSet) open() int { return len(ss.streams) }

// minOpenSeq returns the smallest WAL firstSeq across open streams, and
// whether any open stream has points not yet covered by a sequence (which
// forbids truncation entirely). ok is true when there are no such holes.
func (ss *streamSet) minOpenSeq() (min uint64, ok bool) {
	min, ok = 0, true
	for _, cs := range ss.streams {
		if cs.firstSeq == 0 {
			return 0, false
		}
		if min == 0 || cs.firstSeq < min {
			min = cs.firstSeq
		}
	}
	return min, ok
}

// finish removes the stream from the set and assembles its closed trip.
func (ss *streamSet) finish(cs *courierStream, reason *obs.Counter) *streamedTrip {
	delete(ss.streams, cs.courier)
	openStreamsGauge.Set(float64(len(ss.streams)))
	accepted := cs.ex.Accepted() // Flush resets the trip's counter
	cs.stays = append(cs.stays, cs.ex.Flush()...)
	reason.Inc()
	core.RecordTripQuality(accepted, len(cs.pts)-accepted, len(cs.stays))
	return &streamedTrip{
		trip: model.Trip{
			Courier: cs.courier,
			StartT:  cs.pts[0].T,
			EndT:    cs.pts[len(cs.pts)-1].T,
			Traj:    cs.pts,
		},
		stays:    cs.stays,
		firstSeq: cs.firstSeq,
	}
}

// IngestPoint accepts one streamed GPS fix for a courier, durably logging it
// (when a WAL is attached) before it can close a trip or touch the candidate
// pool. It returns deploy.ErrBackpressure when the pending-trip backlog has
// reached Config.MaxPendingTrips — producers should back off until the next
// re-inference drains it. Implements deploy.StreamIngestor.
func (e *Engine) IngestPoint(ctx context.Context, courier model.CourierID, pt traj.GPSPoint) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestPointLocked(ctx, courier, pt, 0, true)
}

// CloseStream explicitly ends a courier's open trip (deploy.StreamIngestor).
// Closing a courier with no open stream is a no-op.
func (e *Engine) CloseStream(ctx context.Context, courier model.CourierID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closeStreamLocked(ctx, courier, true)
}

// ingestPointLocked is the shared live/replay core of IngestPoint. Live
// points are rejected under backpressure and appended to the WAL before any
// state changes (a failed append leaves the engine untouched, so the
// unacknowledged point can simply be retried); replayed points pass their
// original sequence in seq and skip both.
func (e *Engine) ingestPointLocked(ctx context.Context, courier model.CourierID, pt traj.GPSPoint, seq uint64, live bool) error {
	if live {
		if e.cfg.MaxPendingTrips > 0 && e.pending >= e.cfg.MaxPendingTrips {
			backpressureRejects.Inc()
			return deploy.ErrBackpressure
		}
		if e.wal != nil {
			s, err := e.wal.Append(encodeWALPoint(courier, pt))
			if err != nil {
				return err
			}
			seq = s
		}
	}
	closed := e.ss.point(courier, pt)
	e.ss.noteSeq(courier, seq)
	if closed != nil {
		e.deliverStreamedTripLocked(ctx, closed)
	}
	return nil
}

// closeStreamLocked is the shared live/replay core of CloseStream. The end
// marker hits the WAL before the stream is torn down, so a failed append
// leaves the trip open for a clean retry.
func (e *Engine) closeStreamLocked(ctx context.Context, courier model.CourierID, live bool) error {
	if live {
		if _, ok := e.ss.streams[courier]; !ok {
			return nil
		}
		if e.wal != nil {
			if _, err := e.wal.Append(encodeWALEnd(courier)); err != nil {
				return err
			}
		}
	}
	if closed := e.ss.end(courier); closed != nil {
		e.deliverStreamedTripLocked(ctx, closed)
	}
	return nil
}

// deliverStreamedTripLocked hands a closed trip to the ingest state, sealing
// the open streamed window first when the trip starts past the window grid
// (mirroring forEachWindow's time boundary) and after when the stay-point
// size bound trips.
func (e *Engine) deliverStreamedTripLocked(ctx context.Context, st *streamedTrip) {
	ss := e.ss
	if ss.winEnd == 0 {
		ss.winEnd = st.trip.StartT + ss.cfg.WindowSeconds
	}
	if st.trip.StartT >= ss.winEnd {
		e.sealStreamWindowLocked(ctx)
		for st.trip.StartT >= ss.winEnd {
			ss.winEnd += ss.cfg.WindowSeconds
		}
	}
	e.appendStreamedTripLocked(st)
	if ss.winStays >= ss.cfg.MaxWindowStays {
		e.sealStreamWindowLocked(ctx)
	}
}

// appendStreamedTripLocked installs one closed trip into the accumulating
// dataset and queues its stay points for the next window seal. No window
// logic: the single engine drives boundaries in deliverStreamedTripLocked,
// the sharded engine globally.
func (e *Engine) appendStreamedTripLocked(st *streamedTrip) {
	e.builder.AppendTripStays(st.trip.Courier, st.stays)
	e.trips = append(e.trips, st.trip)
	e.addPendingLocked(1)
	e.ss.winStays += len(st.stays)
	ingestTrips.Inc()
}

// sealStreamWindowLocked clusters the pending streamed trips into the pool
// as one window. Nothing pending is a no-op, so batch and streamed windows
// interleave without producing empty pool windows.
func (e *Engine) sealStreamWindowLocked(ctx context.Context) {
	e.ss.winStays = 0
	if e.builder.PendingTrips() == 0 {
		return
	}
	// SealWindow only errors on a cancelled context before doing anything;
	// streamed seals run to completion like the batch path's merge step.
	_ = e.builder.SealWindow(ctx)
	ingestWindows.Inc()
}

// addStreamedTrip appends one already-closed streamed trip without any
// window bookkeeping — the sharded engine's delivery path, which owns the
// global window grid itself.
func (e *Engine) addStreamedTrip(st *streamedTrip) {
	e.mu.Lock()
	e.appendStreamedTripLocked(st)
	e.mu.Unlock()
}

// sealStreamWindow is the lock-acquiring form of sealStreamWindowLocked for
// the sharded engine's global window boundaries.
func (e *Engine) sealStreamWindow(ctx context.Context) {
	e.mu.Lock()
	e.sealStreamWindowLocked(ctx)
	e.mu.Unlock()
}

// pendingCount reports trips ingested since the served state was built; the
// sharded engine sums it across shards for its backpressure bound.
func (e *Engine) pendingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending
}
