package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// errRemoteSnapshotFiles rejects restore and snapshot-file paths in the
// remote topology: those install serving state into *Engine structs this
// process does not own. Each shard process restores its own snapshot;
// WriteSnapshot (the read side) still works everywhere through the seam.
var errRemoteSnapshotFiles = errors.New("engine: snapshot restore requires in-process shards; restore each shard process from its own snapshot")

// shardManifest is the version-2 snapshot format: the routing state plus one
// single-engine snapshot per shard, inline (Shards, the streaming /snapshot
// form) or as sibling files (Files, the on-disk form where each shard file
// is itself written atomically). A shard that has never served has a null /
// empty entry and simply stays cold after restore.
type shardManifest struct {
	Version    int    `json:"version"`
	Name       string `json:"name,omitempty"`
	ShardCount int    `json:"shard_count"`
	// Precision records the router's geohash precision for operators;
	// restored addresses keep their pinned shard from AddrShards either way.
	Precision  int               `json:"precision,omitempty"`
	AddrShards map[string]int    `json:"addr_shards"`
	Shards     []json.RawMessage `json:"shards,omitempty"`
	Files      []string          `json:"files,omitempty"`
}

// WriteSnapshot streams a version-2 manifest with every ready shard's
// snapshot inline — fetched through the backend seam, so a remote topology
// assembles the same manifest from its shard processes' /v1/snapshot
// streams. It fails while no shard has anything to serve.
func (s *ShardedEngine) WriteSnapshot(w io.Writer) error {
	m, err := s.newManifest()
	if err != nil {
		return err
	}
	ready := false
	m.Shards = make([]json.RawMessage, len(s.backends))
	for i, b := range s.backends {
		var buf bytes.Buffer
		if err := b.WriteSnapshot(&buf); err != nil {
			m.Shards[i] = json.RawMessage("null")
			continue
		}
		ready = true
		m.Shards[i] = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	if !ready {
		return errors.New("engine: nothing to snapshot before the first re-inference")
	}
	return json.NewEncoder(w).Encode(m)
}

// newManifest captures the routing state common to both snapshot forms.
func (s *ShardedEngine) newManifest() (*shardManifest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := &shardManifest{
		Version:    snapshotVersionSharded,
		Name:       s.name,
		ShardCount: len(s.shards),
		Precision:  s.router.Precision(),
		AddrShards: make(map[string]int, len(s.addrShard)),
	}
	for id, sh := range s.addrShard {
		m.AddrShards[fmt.Sprint(id)] = sh
	}
	return m, nil
}

// RestoreSnapshot loads a snapshot stream: a version-2 manifest with inline
// shard snapshots, or a legacy single-engine snapshot (version 0/1), which
// is migrated by routing its addresses through the router — every shard then
// serves its own slice of the old global state (sharing the old global
// model) until its next retrain. Unknown versions are rejected.
func (s *ShardedEngine) RestoreSnapshot(r io.Reader) error {
	if s.remote {
		return errRemoteSnapshotFiles
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("engine: read snapshot: %w", err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("engine: decode snapshot: %w", err)
	}
	switch probe.Version {
	case snapshotVersionSharded:
		var m shardManifest
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("engine: decode sharded manifest: %w", err)
		}
		if len(m.Files) > 0 && len(m.Shards) == 0 {
			return errors.New("engine: manifest references shard files; restore it with LoadSnapshotFile")
		}
		if err := s.applyManifestMeta(&m); err != nil {
			return err
		}
		for i, raw := range m.Shards {
			if i >= len(s.shards) {
				break
			}
			if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
				continue
			}
			if err := s.shards[i].RestoreSnapshot(bytes.NewReader(raw)); err != nil {
				return fmt.Errorf("engine: shard %d: %w", i, err)
			}
		}
		return nil
	case 0, snapshotVersionSingle:
		return s.migrateLegacy(data)
	default:
		return fmt.Errorf("engine: unsupported snapshot version %d (max %d)", probe.Version, snapshotVersionSharded)
	}
}

// applyManifestMeta validates a manifest against the engine's topology and
// installs its routing state.
func (s *ShardedEngine) applyManifestMeta(m *shardManifest) error {
	if m.ShardCount != len(s.shards) {
		return fmt.Errorf("engine: manifest has %d shards, engine is configured with %d (restart with -shards %d)",
			m.ShardCount, len(s.shards), m.ShardCount)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.name == "" {
		s.name = m.Name
	}
	for k, shardIdx := range m.AddrShards {
		var id model.AddressID
		if _, err := fmt.Sscan(k, &id); err != nil {
			return fmt.Errorf("engine: bad manifest address key %q", k)
		}
		if shardIdx < 0 || shardIdx >= len(s.shards) {
			return fmt.Errorf("engine: manifest routes address %s to shard %d of %d", k, shardIdx, len(s.shards))
		}
		s.addrShard[id] = shardIdx
	}
	s.publishRoutesLocked()
	return nil
}

// migrateLegacy partitions a single-engine snapshot across the shards.
func (s *ShardedEngine) migrateLegacy(data []byte) error {
	var sn snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return fmt.Errorf("engine: decode snapshot: %w", err)
	}
	parts := make([]snapshot, len(s.shards))
	for i := range parts {
		parts[i] = snapshot{
			Version:   snapshotVersionSingle,
			Name:      sn.Name,
			Locations: make(map[string][2]float64),
			Matcher:   sn.Matcher, // every shard serves the old global model
		}
	}
	route := make(map[model.AddressID]int, len(sn.Addresses))
	for _, a := range sn.Addresses {
		sh := s.router.AddressShard(a)
		route[a.ID] = sh
		parts[sh].Addresses = append(parts[sh].Addresses, a)
	}
	for k, v := range sn.Locations {
		var id model.AddressID
		if _, err := fmt.Sscan(k, &id); err != nil {
			return fmt.Errorf("engine: bad snapshot location key %q", k)
		}
		sh, ok := route[id]
		if !ok {
			// Location without address metadata: route by the point itself.
			sh = s.router.ShardOfPoint(geo.Point{X: v[0], Y: v[1]})
			route[id] = sh
		}
		parts[sh].Locations[k] = v
	}
	for i, part := range parts {
		if len(part.Addresses) == 0 && len(part.Locations) == 0 {
			continue
		}
		doc, err := json.Marshal(part)
		if err != nil {
			return err
		}
		if err := s.shards[i].RestoreSnapshot(bytes.NewReader(doc)); err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
	}
	s.mu.Lock()
	if s.name == "" {
		s.name = sn.Name
	}
	for id, sh := range route {
		s.addrShard[id] = sh
	}
	s.publishRoutesLocked()
	s.mu.Unlock()
	return nil
}

// SaveSnapshotFile writes one snapshot file per ready shard next to path
// (path.shardN, each atomic) plus the manifest at path (atomic), so a crash
// at any point leaves the previous generation loadable.
func (s *ShardedEngine) SaveSnapshotFile(path string) error {
	if s.remote {
		return errRemoteSnapshotFiles
	}
	m, err := s.newManifest()
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	m.Files = make([]string, len(s.shards))
	ready := false
	for i, sh := range s.shards {
		name := fmt.Sprintf("%s.shard%d", base, i)
		if err := sh.SaveSnapshotFile(filepath.Join(dir, name)); err != nil {
			continue // shard not ready (or I/O failure): leave its entry empty
		}
		ready = true
		m.Files[i] = name
	}
	if !ready {
		return errors.New("engine: nothing to snapshot before the first re-inference")
	}
	doc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(append(doc, '\n'))
		return werr
	}); err != nil {
		return err
	}
	s.maybeTruncateWAL()
	return nil
}

// LoadSnapshotFile restores from a manifest (or legacy snapshot) file.
func (s *ShardedEngine) LoadSnapshotFile(path string) error {
	if s.remote {
		return errRemoteSnapshotFiles
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		Version int               `json:"version"`
		Files   []string          `json:"files"`
		Shards  []json.RawMessage `json:"shards"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("engine: decode snapshot: %w", err)
	}
	if probe.Version != snapshotVersionSharded || len(probe.Files) == 0 {
		// Inline manifest or legacy snapshot: the stream path handles both.
		return s.RestoreSnapshot(bytes.NewReader(data))
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("engine: decode sharded manifest: %w", err)
	}
	if err := s.applyManifestMeta(&m); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	for i, name := range m.Files {
		if name == "" || i >= len(s.shards) {
			continue
		}
		if err := s.shards[i].LoadSnapshotFile(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
	}
	return nil
}
