package engine_test

import (
	"context"
	"math"
	"testing"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/engine"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
)

// querier is the read surface both engine shapes share.
type querier interface {
	Query(addr model.AddressID) (geo.Point, deploy.Source)
}

// servedAnswers enumerates every dataset address the engine currently
// answers, through the public read path — the ground truth a swap report
// must agree with.
func servedAnswers(q querier, ds *model.Dataset) map[model.AddressID]geo.Point {
	out := make(map[model.AddressID]geo.Point, len(ds.Addresses))
	for _, a := range ds.Addresses {
		if p, src := q.Query(a.ID); src != deploy.SourceNone {
			out[a.ID] = p
		}
	}
	return out
}

// bruteChurn is the brute-force diff of two served answer maps.
type bruteChurn struct {
	added, dropped, moved, retained int64
}

func bruteDiff(before, after map[model.AddressID]geo.Point) bruteChurn {
	var c bruteChurn
	for addr, p2 := range after {
		p1, ok := before[addr]
		switch {
		case !ok:
			c.added++
		case p1 == p2:
			c.retained++
		default:
			c.moved++
		}
	}
	for addr := range before {
		if _, ok := after[addr]; !ok {
			c.dropped++
		}
	}
	return c
}

// splitDataset halves the trips so two consecutive ingest+reinfer rounds see
// different evidence and the second swap produces real churn.
func splitDataset(ds *model.Dataset) (*model.Dataset, *model.Dataset) {
	half := len(ds.Trips) / 2
	first := &model.Dataset{Name: ds.Name, Trips: ds.Trips[:half], Addresses: ds.Addresses, Truth: ds.Truth}
	second := &model.Dataset{Name: ds.Name, Trips: ds.Trips[half:]}
	return first, second
}

// checkReportAgainstBrute asserts one aggregated swap report equals the
// brute-force diff of the served answers around the swap.
func checkReportAgainstBrute(t *testing.T, added, dropped, moved, retained int64, before, after int,
	m1, m2 map[model.AddressID]geo.Point) {
	t.Helper()
	want := bruteDiff(m1, m2)
	if added != want.added || dropped != want.dropped || moved != want.moved || retained != want.retained {
		t.Errorf("report added/dropped/moved/retained = %d/%d/%d/%d, brute diff = %d/%d/%d/%d",
			added, dropped, moved, retained, want.added, want.dropped, want.moved, want.retained)
	}
	if before != len(m1) || after != len(m2) {
		t.Errorf("report before/after = %d/%d, served answer counts = %d/%d", before, after, len(m1), len(m2))
	}
}

// TestSwapReportMatchesBruteDiff runs two consecutive re-inferences on a
// single engine and checks the published churn report against a brute-force
// diff of what the public Query path actually served before and after.
func TestSwapReportMatchesBruteDiff(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	ds1, ds2 := splitDataset(ds)
	e := engine.New(quickConfig())
	defer e.Close()
	ctx := context.Background()

	if err := e.IngestDataset(ctx, ds1); err != nil {
		t.Fatal(err)
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	m1 := servedAnswers(e, ds)
	if len(m1) == 0 {
		t.Fatal("no served answers after the first re-inference")
	}
	reps := e.SwapReports(0)
	if len(reps) != 1 {
		t.Fatalf("after one reinfer got %d swap reports, want 1", len(reps))
	}
	// Cold boot: no outgoing store, everything is an add.
	checkReportAgainstBrute(t, reps[0].Added, reps[0].Dropped, reps[0].Moved, reps[0].Retained,
		reps[0].Before, reps[0].After, nil, m1)
	if reps[0].Kind != "reinfer" {
		t.Errorf("first report kind = %q, want reinfer", reps[0].Kind)
	}

	if err := e.IngestDataset(ctx, ds2); err != nil {
		t.Fatal(err)
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := servedAnswers(e, ds)
	reps = e.SwapReports(0)
	if len(reps) != 2 {
		t.Fatalf("after two reinfers got %d swap reports, want 2", len(reps))
	}
	latest := reps[0] // newest first
	if latest.Seq != 2 {
		t.Errorf("latest report seq = %d, want 2", latest.Seq)
	}
	checkReportAgainstBrute(t, latest.Added, latest.Dropped, latest.Moved, latest.Retained,
		latest.Before, latest.After, m1, m2)
	checkReportInvariants(t, latest)
}

// checkReportInvariants asserts the internal consistency of one report: the
// ratio matches its own counts, the distance buckets sum to Moved, and the
// summary stats only exist when something moved.
func checkReportInvariants(t *testing.T, rep api.SwapReport) {
	t.Helper()
	den := rep.Moved + rep.Retained
	wantRatio := 0.0
	if den > 0 {
		wantRatio = float64(rep.Moved) / float64(den)
	}
	if math.Abs(rep.ChurnRatio-wantRatio) > 1e-12 {
		t.Errorf("ChurnRatio = %v, want %v from moved=%d retained=%d", rep.ChurnRatio, wantRatio, rep.Moved, rep.Retained)
	}
	var bucketSum int64
	for _, b := range rep.MovedDistance {
		bucketSum += b.Count
	}
	if bucketSum != rep.Moved {
		t.Errorf("distance buckets sum to %d, want Moved=%d", bucketSum, rep.Moved)
	}
	if rep.Moved == 0 && (rep.MeanMovedMeters != 0 || rep.MaxMovedMeters != 0) {
		t.Errorf("nothing moved but mean/max = %v/%v", rep.MeanMovedMeters, rep.MaxMovedMeters)
	}
	if rep.Moved > 0 && rep.MaxMovedMeters < rep.MeanMovedMeters {
		t.Errorf("max moved %v < mean moved %v", rep.MaxMovedMeters, rep.MeanMovedMeters)
	}
}

// TestShardedSwapReportsMatchBruteDiff repeats the brute-force check against
// a sharded engine: each shard owns a disjoint address set, so the sum of the
// newest per-shard reports must equal the global diff of the public read
// path.
func TestShardedSwapReportsMatchBruteDiff(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	ds1, ds2 := splitDataset(ds)
	r, err := shard.NewRouter(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.NewSharded(quickConfig(), r)
	defer e.Close()
	ctx := context.Background()

	if err := e.IngestDataset(ctx, ds1); err != nil {
		t.Fatal(err)
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	m1 := servedAnswers(e, ds)
	if err := e.IngestDataset(ctx, ds2); err != nil {
		t.Fatal(err)
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := servedAnswers(e, ds)

	// Newest report per shard covers the second swap; summed they must equal
	// the global brute diff because shards partition the address space.
	newest := map[string]api.SwapReport{}
	for _, rep := range e.SwapReports(0) {
		if _, seen := newest[rep.Shard]; !seen {
			newest[rep.Shard] = rep // list is newest-first
		}
	}
	var added, dropped, moved, retained int64
	var before, after int
	for sh, rep := range newest {
		if rep.Seq != 2 {
			t.Errorf("shard %s newest report seq = %d, want 2 (one report per reinfer)", sh, rep.Seq)
		}
		added += rep.Added
		dropped += rep.Dropped
		moved += rep.Moved
		retained += rep.Retained
		before += rep.Before
		after += rep.After
		checkReportInvariants(t, rep)
	}
	checkReportAgainstBrute(t, added, dropped, moved, retained, before, after, m1, m2)
}

// TestSwapReportLimit pins the ring semantics: history is bounded by
// Config.SwapHistory and list limits apply newest-first.
func TestSwapReportLimit(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.SwapHistory = 2
	e := engine.New(cfg)
	defer e.Close()
	ctx := context.Background()
	if err := e.IngestDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Reinfer(ctx); err != nil {
			t.Fatal(err)
		}
	}
	reps := e.SwapReports(0)
	if len(reps) != 2 {
		t.Fatalf("ring kept %d reports, want 2", len(reps))
	}
	if reps[0].Seq != 3 || reps[1].Seq != 2 {
		t.Errorf("kept seqs %d,%d, want 3,2 (newest first, oldest evicted)", reps[0].Seq, reps[1].Seq)
	}
	if got := e.SwapReports(1); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("SwapReports(1) = %+v, want just seq 3", got)
	}
}
