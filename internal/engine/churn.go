package engine

import (
	"sort"
	"sync"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/obs"
)

// Model-quality metrics: how much the served answers changed at each
// hot-swap, how confident the matcher is in what it serves, and how often
// the read path answers from a low-confidence address. All families carry a
// shard label ("global" for an unsharded engine) so a sharded process shows
// per-shard churn without scrape-side aggregation.
var (
	reinferChurnRatio = obs.Default.GaugeVec("dlinfma_reinfer_churn_ratio",
		"Fraction of addresses answerable before and after the last hot-swap whose location moved.",
		"shard")
	reinferMovedDistance = obs.Default.HistogramVec("dlinfma_reinfer_moved_distance_meters",
		"Distance a served address location moved across a hot-swap, in meters.",
		deploy.ChurnDistanceBounds, "shard")
	reinferConfidence = obs.Default.HistogramVec("dlinfma_reinfer_confidence",
		"Top-1 probability of each address-level inference produced by a re-inference.",
		confidenceBounds, "shard")
	lowConfAddresses = obs.Default.GaugeVec("dlinfma_serving_low_confidence_addresses",
		"Address-level answers in the served store whose top-1 probability sits below the low-confidence threshold.",
		"shard")
	lowConfQueries = obs.Default.Counter("dlinfma_engine_low_confidence_queries_total",
		"Serving queries answered from an address whose inference confidence sits below the threshold.")
)

// confidenceBounds bucket a probability in [0,1]; dense near 1 where a
// well-trained matcher should live.
var confidenceBounds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}

// defaultSwapHistory is the ring size when Config.SwapHistory is unset.
const defaultSwapHistory = 32

// defaultLowConfidence is the threshold when Config.LowConfidence is unset.
const defaultLowConfidence = 0.5

// swapKind values recorded in SwapReport.Kind.
const (
	swapKindReinfer = "reinfer"
	swapKindRestore = "restore"
)

// swapRing keeps the last N hot-swap churn reports, newest first on read.
type swapRing struct {
	mu   sync.Mutex
	cap  int
	seq  int64
	reps []api.SwapReport // oldest..newest, len <= cap
}

func newSwapRing(capacity int) *swapRing {
	if capacity <= 0 {
		capacity = defaultSwapHistory
	}
	return &swapRing{cap: capacity}
}

// push appends a report, assigning its per-engine sequence number, and
// evicts the oldest past capacity.
func (r *swapRing) push(rep api.SwapReport) api.SwapReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rep.Seq = r.seq
	r.reps = append(r.reps, rep)
	if len(r.reps) > r.cap {
		copy(r.reps, r.reps[len(r.reps)-r.cap:])
		r.reps = r.reps[:r.cap]
	}
	return rep
}

// list returns up to limit reports, newest first (limit <= 0: all).
func (r *swapRing) list(limit int) []api.SwapReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.reps)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]api.SwapReport, 0, n)
	for i := len(r.reps) - 1; i >= len(r.reps)-n; i-- {
		out = append(out, r.reps[i])
	}
	return out
}

// churnReport diffs the outgoing frozen store against the incoming one,
// records the churn metrics under the engine's shard label, and pushes a
// report onto the swap ring. Runs after the swap published — the serving
// path never waits on the diff.
func (e *Engine) churnReport(old, incoming *deploy.FrozenStore, kind string) {
	movedHist := reinferMovedDistance.With(e.shardLabel)
	c := deploy.DiffFrozen(old, incoming, float64(e.lowConf), func(meters float64) {
		movedHist.Observe(meters)
	})
	reinferChurnRatio.With(e.shardLabel).Set(c.Ratio())
	lowConfAddresses.With(e.shardLabel).Set(float64(c.LowConfidence))

	rep := api.SwapReport{
		Shard:           e.shardLabel,
		Time:            time.Now().UTC(),
		Kind:            kind,
		Before:          c.Before,
		After:           c.After,
		Added:           c.Added,
		Dropped:         c.Dropped,
		Moved:           c.Moved,
		Retained:        c.Retained,
		ChurnRatio:      c.Ratio(),
		MeanMovedMeters: c.MeanMovedMeters,
		MaxMovedMeters:  c.MaxMovedMeters,
		LowConfidence:   c.LowConfidence,
	}
	if c.Moved > 0 {
		rep.MovedDistance = make([]api.SwapDistanceBucket, 0, len(c.MovedDist))
		for i, n := range c.MovedDist {
			if n == 0 {
				continue
			}
			b := api.SwapDistanceBucket{Count: n}
			if i < len(deploy.ChurnDistanceBounds) {
				b.LEMeters = deploy.ChurnDistanceBounds[i]
			} else {
				b.Inf = true
			}
			rep.MovedDistance = append(rep.MovedDistance, b)
		}
	}
	rep = e.swaps.push(rep)
	e.log.Info("hot-swap churn",
		"shard", e.shardLabel, "kind", kind, "seq", rep.Seq,
		"before", rep.Before, "after", rep.After,
		"added", rep.Added, "dropped", rep.Dropped, "moved", rep.Moved,
		"churn_ratio", rep.ChurnRatio, "low_confidence", rep.LowConfidence)
}

// SwapReports returns up to limit hot-swap churn reports, newest first
// (limit <= 0: everything retained). It implements deploy.SwapReporter.
func (e *Engine) SwapReports(limit int) []api.SwapReport {
	return e.swaps.list(limit)
}

// SwapReports aggregates the in-process shards' rings, interleaved newest
// first. Remote shard backends report through their own process's
// /v1/debug/swaps (and the frontend's peer metric re-export); a pure
// frontend answers an empty list.
func (s *ShardedEngine) SwapReports(limit int) []api.SwapReport {
	var out []api.SwapReport
	for _, sh := range s.shards {
		if sh == nil {
			continue
		}
		out = append(out, sh.swaps.list(0)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.After(out[j].Time) })
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}
