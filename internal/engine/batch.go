package engine

import (
	"sync"

	"dlinfma/internal/deploy"
	"dlinfma/internal/model"
)

// scatter is the recycled grouping scratch of one ShardedEngine.QueryBatch
// call: per-shard index lists plus a per-shard error slot, pooled so the
// steady-state batch path reuses its backing arrays instead of reallocating
// them per request.
type scatter struct {
	idx  [][]int32
	errs []error
}

var scatterPool = sync.Pool{New: func() any { return new(scatter) }}

// group files each key's position under its owning shard. Unrouted keys are
// answered SourceNone in place (and counted) so the gather step can skip
// them. The returned per-shard lists alias the scratch's backing arrays —
// valid until release.
func (sc *scatter) group(nShards int, rt map[model.AddressID]int32, addrs []model.AddressID, out []deploy.BatchAnswer) [][]int32 {
	if cap(sc.idx) < nShards {
		sc.idx = make([][]int32, nShards)
		sc.errs = make([]error, nShards)
	}
	sc.idx = sc.idx[:nShards]
	sc.errs = sc.errs[:nShards]
	for i := range sc.idx {
		sc.idx[i] = sc.idx[i][:0]
		sc.errs[i] = nil
	}
	var unrouted int64
	for i, addr := range addrs {
		sh, ok := rt[addr]
		if !ok {
			out[i] = deploy.BatchAnswer{Src: deploy.SourceNone}
			unrouted++
			continue
		}
		sc.idx[sh] = append(sc.idx[sh], int32(i))
	}
	if unrouted > 0 {
		shardUnroutedQueries.Add(unrouted)
	}
	return sc.idx
}

// release returns the scratch to the pool. The caller must be done with the
// slices group returned.
func (sc *scatter) release() { scatterPool.Put(sc) }
