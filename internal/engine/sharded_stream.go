package engine

import (
	"context"
	"errors"

	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
	"dlinfma/internal/wal"
)

// Sharded streaming ingest. The sharded engine keeps ONE stream set and ONE
// WAL at the top level rather than one per shard: trip cutting (the gap
// rule) and pool-window boundaries are global decisions — a shard must see
// the same trips and the same window grid one unsharded engine would — and a
// single log yields a single total order to replay. Closed trips route to
// their shard by trajectory (streamed fixes carry no waybills) and enter the
// shard's pool through the window-less addStreamedTrip path; the sharded
// engine seals every shard's streamed window together when the global grid
// boundary passes.
//
// ingestMu serializes every mutating ingest operation (batch windows,
// streamed points, end markers, replay) so the WAL's append order equals the
// apply order — replaying the log reproduces the exact ingest state. It
// nests outside mu and the shards' own locks; the query path touches none of
// them.

// errRemoteStreaming rejects the local-only ingest surfaces in the remote
// topology: streamed trips enter shard pools through the window-less
// addStreamedTrip path, which has no wire form. Stream into each shard
// process directly instead.
var errRemoteStreaming = errors.New("engine: streaming ingest requires in-process shards; stream to the shard processes directly")

// IngestPoint accepts one streamed GPS fix (deploy.StreamIngestor), logging
// it durably before it can close a trip or touch any shard's pool.
func (s *ShardedEngine) IngestPoint(ctx context.Context, courier model.CourierID, pt traj.GPSPoint) error {
	if s.remote {
		return errRemoteStreaming
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.ingestPointLocked(ctx, courier, pt, 0, true)
}

// CloseStream explicitly ends a courier's open trip (deploy.StreamIngestor).
func (s *ShardedEngine) CloseStream(ctx context.Context, courier model.CourierID) error {
	if s.remote {
		return errRemoteStreaming
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.closeStreamLocked(ctx, courier, true)
}

// ingestPointLocked mirrors Engine.ingestPointLocked at the sharded level:
// live points are rejected under backpressure and logged before any state
// changes; replayed points carry their original sequence.
func (s *ShardedEngine) ingestPointLocked(ctx context.Context, courier model.CourierID, pt traj.GPSPoint, seq uint64, live bool) error {
	if live {
		if s.overloaded() {
			backpressureRejects.Inc()
			return deploy.ErrBackpressure
		}
		if s.wal != nil {
			sq, err := s.wal.Append(encodeWALPoint(courier, pt))
			if err != nil {
				return err
			}
			seq = sq
		}
	}
	closed := s.ss.point(courier, pt)
	s.ss.noteSeq(courier, seq)
	if closed != nil {
		s.deliverStreamedTripLocked(ctx, closed)
	}
	return nil
}

// closeStreamLocked mirrors Engine.closeStreamLocked: the end marker hits
// the WAL before teardown; closing a courier with no open stream is a no-op.
func (s *ShardedEngine) closeStreamLocked(ctx context.Context, courier model.CourierID, live bool) error {
	if live {
		if _, ok := s.ss.streams[courier]; !ok {
			return nil
		}
		if s.wal != nil {
			if _, err := s.wal.Append(encodeWALEnd(courier)); err != nil {
				return err
			}
		}
	}
	if closed := s.ss.end(courier); closed != nil {
		s.deliverStreamedTripLocked(ctx, closed)
	}
	return nil
}

// deliverStreamedTripLocked routes one closed trip to its shard, driving the
// GLOBAL streamed window grid: crossing a time boundary (or the stay-point
// size bound) seals every shard's pending streamed trips together, so shard
// pools see the same window cuts one global engine would.
func (s *ShardedEngine) deliverStreamedTripLocked(ctx context.Context, st *streamedTrip) {
	ss := s.ss
	if ss.winEnd == 0 {
		ss.winEnd = st.trip.StartT + ss.cfg.WindowSeconds
	}
	if st.trip.StartT >= ss.winEnd {
		s.sealStreamWindowsLocked(ctx)
		for st.trip.StartT >= ss.winEnd {
			ss.winEnd += ss.cfg.WindowSeconds
		}
	}
	sh := s.router.TripShard(st.trip)
	s.shards[sh].addStreamedTrip(st)
	ss.winStays += len(st.stays)
	s.mu.Lock()
	s.nTrips++
	s.mu.Unlock()
	if ss.winStays >= ss.cfg.MaxWindowStays {
		s.sealStreamWindowsLocked(ctx)
	}
}

// sealStreamWindowsLocked seals the streamed window on every in-process
// shard (no-op on shards with nothing pending) and resets the global size
// counter. Remote shards seal their own streamed windows.
func (s *ShardedEngine) sealStreamWindowsLocked(ctx context.Context) {
	s.ss.winStays = 0
	for _, sh := range s.shards {
		if sh != nil {
			sh.sealStreamWindow(ctx)
		}
	}
}

// overloaded reports whether the summed pending-trip backlog across the
// in-process shards has reached MaxPendingTrips. Remote shards enforce their
// own processes' bounds and answer 429 through the backend seam instead.
func (s *ShardedEngine) overloaded() bool {
	if s.cfg.MaxPendingTrips <= 0 {
		return false
	}
	total := 0
	for _, sh := range s.shards {
		if sh == nil {
			continue
		}
		total += sh.pendingCount()
		if total >= s.cfg.MaxPendingTrips {
			return true
		}
	}
	return false
}

// AttachWAL makes w the sharded engine's write-ahead log. Attach after
// ReplayWAL so replayed records are not re-appended. The remote topology
// refuses a WAL: durability belongs to each shard process.
func (s *ShardedEngine) AttachWAL(w *wal.WAL) {
	if s.remote {
		panic("engine: a remote-sharded engine cannot own a WAL")
	}
	s.ingestMu.Lock()
	s.wal = w
	s.ingestMu.Unlock()
}

// ReplayWAL re-applies every record of w through the sharded live paths
// (minus backpressure and re-logging), rebuilding the routing and per-shard
// ingest state snapshots omit. Returns the number of records applied.
func (s *ShardedEngine) ReplayWAL(ctx context.Context, w *wal.WAL) (int, error) {
	if s.remote {
		return 0, errRemoteStreaming
	}
	return replayWAL(ctx, w, s.applyWALRecord)
}

func (s *ShardedEngine) applyWALRecord(ctx context.Context, seq uint64, rec *walRecord) error {
	switch rec.Kind {
	case walKindIngest:
		return s.ingest(ctx, rec.Trips, rec.Addrs, rec.Truth, false)
	case walKindPoint:
		s.ingestMu.Lock()
		defer s.ingestMu.Unlock()
		return s.ingestPointLocked(ctx, rec.Courier, traj.GPSPoint{P: geo.Point{X: rec.X, Y: rec.Y}, T: rec.T}, seq, false)
	case walKindEnd:
		s.ingestMu.Lock()
		defer s.ingestMu.Unlock()
		return s.closeStreamLocked(ctx, rec.Courier, false)
	default:
		return errUnknownWALKind(rec.Kind)
	}
}

// maybeTruncateWAL drops WAL segments wholly covered by the last fully
// successful re-inference, once the manifest reached durable storage.
func (s *ShardedEngine) maybeTruncateWAL() {
	s.ingestMu.Lock()
	w := s.wal
	s.ingestMu.Unlock()
	s.mu.RLock()
	seq := s.reinferSeq
	s.mu.RUnlock()
	if w != nil && seq > 0 {
		_ = w.TruncateThrough(seq)
	}
}
