package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dlinfma/internal/cluster"
	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/shard"
	"dlinfma/internal/wal"
)

// ShardedEngine owns one Engine per geographic shard behind a shard.Router.
// Addresses and ground truth are routed by the router's address key; each
// trip is replicated to every shard owning one of its waybill addresses, so
// a shard always holds the complete trajectory evidence for its own
// addresses even when stay points straddle routing-cell edges. Re-inference
// runs per shard in parallel (bounded by the Workers knob) and each shard
// hot-swaps its own (pool, model, store) triple independently — one shard's
// failed retrain never touches the others' served state.
//
// Location commonality (Equation 2) is normalized by the global distinct
// trip count, not the shard-local one, so per-shard features match what one
// global engine would compute on partition-aligned data.
type ShardedEngine struct {
	cfg    Config
	router *shard.Router
	// backends is what every fan-out path talks to — the transport seam. In
	// the in-process topology each entry is the matching shards[i] engine; in
	// the remote topology (NewShardedBackends) entries are cluster HTTP
	// clients and the shards slots stay nil.
	backends []cluster.ShardBackend
	shards   []*Engine
	// remote is true when any shard lives out of process. The local-only
	// paths — streaming ingest, the WAL, snapshot restore and snapshot files —
	// refuse to run then, because they reach into *Engine internals no wire
	// protocol carries.
	remote bool
	// lcAuto: the caller left Core.LCTotalTrips at 0, so Reinfer maintains
	// the global trip universe on each shard automatically.
	lcAuto bool

	// rootCtx bounds background jobs; Close cancels it.
	rootCtx context.Context
	cancel  context.CancelFunc

	// ingestMu serializes every mutating ingest operation (batch windows,
	// streamed points, end markers, WAL replay) so the WAL append order
	// equals the apply order. It nests outside mu and the shards' locks; the
	// lock-free query path never touches it. ss, wal, and the streamed
	// window grid live under it (see sharded_stream.go).
	ingestMu sync.Mutex
	ss       *streamSet
	wal      *wal.WAL

	// mu guards the mutable routing state (writers: ingest, restore).
	mu        sync.RWMutex
	name      string
	addrShard map[model.AddressID]int
	nTrips    int
	reinfers  int
	// reinferSeq is the WAL position the last fully successful re-inference
	// covered (safe to truncate through after a durable snapshot).
	reinferSeq uint64

	// routes is the lock-free read path's routing table: an immutable copy
	// of addrShard republished after every mutation (ingest windows and
	// snapshot restores — rare next to queries). Query loads the pointer and
	// does one lookup; it never touches mu.
	routes atomic.Pointer[map[model.AddressID]int32]

	// jobMu guards the background re-inference job.
	jobMu  sync.Mutex
	jobSeq int
	job    *deploy.JobStatus
	jobWG  sync.WaitGroup

	// routeCounters pre-resolves one routed-query counter per shard so the
	// query path adds one atomic op, not a label lookup.
	routeCounters []*obs.Counter

	// shardTrips (under mu) accumulates per-shard routed trip counts;
	// tripGauges/skewGauge publish them plus the max/mean ingest-skew ratio
	// so a hot geographic shard is visible before it becomes a slow reinfer.
	shardTrips []int64
	tripGauges []*obs.Gauge
}

// NewSharded returns an empty sharded engine with r.N() shards, each a full
// Engine with cfg. Close it to cancel and join background work.
func NewSharded(cfg Config, r *shard.Router) *ShardedEngine {
	ctx, cancel := context.WithCancel(context.Background())
	s := &ShardedEngine{
		cfg:       cfg,
		router:    r,
		backends:  make([]cluster.ShardBackend, r.N()),
		shards:    make([]*Engine, r.N()),
		lcAuto:    cfg.Core.LCTotalTrips == 0,
		rootCtx:   ctx,
		cancel:    cancel,
		addrShard: make(map[model.AddressID]int),
	}
	s.ss = newStreamSet(cfg.Stream, cfg.Core)
	s.routeCounters = make([]*obs.Counter, r.N())
	s.shardTrips = make([]int64, r.N())
	s.tripGauges = make([]*obs.Gauge, r.N())
	for i := range s.shards {
		shardCfg := cfg
		shardCfg.Logger = cfg.Logger.With("shard", i)
		// Backpressure is enforced at the sharded level (summed backlog);
		// shards must never double-reject their owner's deliveries.
		shardCfg.MaxPendingTrips = 0
		s.shards[i] = New(shardCfg)
		// Quality metrics and swap reports carry the shard index, not the
		// standalone "global" label.
		s.shards[i].shardLabel = strconv.Itoa(i)
		s.backends[i] = s.shards[i]
		s.routeCounters[i] = shardRoutedQueries.With(strconv.Itoa(i))
		s.tripGauges[i] = ingestShardTrips.With(strconv.Itoa(i))
	}
	return s
}

// NewShardedBackends returns a sharded engine whose shards live behind the
// given backends — typically cluster HTTP clients pointing at other
// processes — instead of in-process engines. backends[i] serves shard i of
// r's routing space, so len(backends) must equal r.N().
//
// The remote topology keeps the full fan-out semantics (routed ingest,
// parallel re-inference, scatter/gather reads, aggregated status, manifest
// snapshots) but refuses the local-only paths: streaming ingest, WAL
// attach/replay, snapshot restore, and snapshot files all reach into shard
// internals that have no wire form, and each remote process owns its own.
// Two caveats follow from the same boundary: automatic LC-normalization
// pinning cannot cross the wire (pin cfg.Core.LCTotalTrips in every shard
// process for bit-identical features), and backpressure is each shard
// process's own MaxPendingTrips — a remote reject still surfaces here as
// deploy.ErrBackpressure.
func NewShardedBackends(cfg Config, r *shard.Router, backends []cluster.ShardBackend) (*ShardedEngine, error) {
	if len(backends) != r.N() {
		return nil, fmt.Errorf("engine: %d backends for %d shards", len(backends), r.N())
	}
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("engine: nil backend for shard %d", i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &ShardedEngine{
		cfg:       cfg,
		router:    r,
		backends:  append([]cluster.ShardBackend(nil), backends...),
		shards:    make([]*Engine, r.N()),
		remote:    true,
		rootCtx:   ctx,
		cancel:    cancel,
		addrShard: make(map[model.AddressID]int),
	}
	s.ss = newStreamSet(cfg.Stream, cfg.Core)
	s.routeCounters = make([]*obs.Counter, r.N())
	s.shardTrips = make([]int64, r.N())
	s.tripGauges = make([]*obs.Gauge, r.N())
	for i := range s.routeCounters {
		s.routeCounters[i] = shardRoutedQueries.With(strconv.Itoa(i))
		s.tripGauges[i] = ingestShardTrips.With(strconv.Itoa(i))
	}
	return s, nil
}

// Router returns the router the engine shards by.
func (s *ShardedEngine) Router() *shard.Router { return s.router }

// NumShards returns the shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Shard returns shard i's engine (for tests and diagnostics).
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// Close cancels background work, joins any in-flight re-inference, and
// closes every shard. Served state stays queryable.
func (s *ShardedEngine) Close() {
	s.cancel()
	s.jobWG.Wait()
	for _, sh := range s.shards {
		if sh != nil {
			sh.Close()
		}
	}
}

// SetName labels the dataset on the manifest and every in-process shard.
// Remote shard processes keep their own dataset labels.
func (s *ShardedEngine) SetName(name string) {
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
	for _, sh := range s.shards {
		if sh != nil {
			sh.SetName(name)
		}
	}
}

// Ingest routes one window across the shards: addresses and truth by the
// router's address key, trips replicated to every shard owning one of their
// waybill addresses (address-less trips by trajectory key). Cancelling ctx
// mid-window leaves already-ingested shards with the window and the rest
// without; re-inference tolerates the imbalance, but callers wanting a clean
// window boundary should retry the whole window.
func (s *ShardedEngine) Ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) error {
	return s.ingest(ctx, trips, addrs, truth, true)
}

// ingest is the shared live/replay core of Ingest. It holds ingestMu across
// the whole window — including the per-shard fan-out — so the WAL's append
// order equals the apply order even with streamed points racing batch
// windows. Live windows are rejected under backpressure before any state
// changes and logged only after every shard applied (a partially applied,
// cancelled window never enters the log; the caller's documented recourse is
// retrying the whole window either way).
func (s *ShardedEngine) ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point, live bool) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if live && len(trips) > 0 && s.overloaded() {
		backpressureRejects.Inc()
		return deploy.ErrBackpressure
	}
	s.mu.Lock()
	added := 0
	for _, a := range addrs {
		if _, ok := s.addrShard[a.ID]; !ok {
			s.addrShard[a.ID] = s.router.AddressShard(a)
			added++
		}
	}
	lookup := func(id model.AddressID) (int, bool) {
		sh, ok := s.addrShard[id]
		return sh, ok
	}
	parts := core.PartitionWindow(len(s.shards), trips, addrs, truth, lookup, s.router.TripShard)
	s.nTrips += len(trips)
	if added > 0 {
		s.publishRoutesLocked()
	}
	if len(trips) > 0 {
		s.recordIngestSkewLocked(parts)
	}
	s.mu.Unlock()

	for i, p := range parts {
		if p.Empty() {
			continue
		}
		sctx, ssp := trace.Start(ctx, "engine.shard_ingest")
		ssp.SetAttr("shard", i)
		if err := s.backends[i].Ingest(sctx, p.Trips, p.Addrs, p.Truth); err != nil {
			err = fmt.Errorf("engine: shard %d: %w", i, err)
			ssp.RecordError(err)
			ssp.End()
			return err
		}
		ssp.End()
	}
	if live && s.wal != nil && (len(trips) > 0 || len(addrs) > 0 || len(truth) > 0) {
		if _, err := s.wal.Append(encodeWALIngest(trips, addrs, truth)); err != nil {
			return err
		}
	}
	return nil
}

// recordIngestSkewLocked folds one routed window into the cumulative
// per-shard trip counts and republishes the skew gauge: max over mean of the
// per-shard totals (1 = perfectly balanced, len(shards) = everything on one
// shard). Callers hold mu.
func (s *ShardedEngine) recordIngestSkewLocked(parts []core.WindowPartition) {
	var total int64
	var max int64
	for i, p := range parts {
		s.shardTrips[i] += int64(len(p.Trips))
		s.tripGauges[i].Set(float64(s.shardTrips[i]))
		total += s.shardTrips[i]
		if s.shardTrips[i] > max {
			max = s.shardTrips[i]
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(s.shardTrips))
		ingestSkew.Set(float64(max) / mean)
	}
}

// IngestDataset feeds a whole dataset through Ingest in PoolWindowSeconds
// windows. Window boundaries are computed globally before routing, so every
// shard sees the same window grid one unsharded engine would.
func (s *ShardedEngine) IngestDataset(ctx context.Context, ds *model.Dataset) error {
	s.mu.Lock()
	if s.name == "" {
		s.name = ds.Name
	}
	name := s.name
	s.mu.Unlock()
	for _, sh := range s.shards {
		if sh != nil { // remote shards name themselves from their own ingest
			sh.SetName(name)
		}
	}
	if err := s.Ingest(ctx, nil, ds.Addresses, ds.Truth); err != nil {
		return err
	}
	return forEachWindow(ds.Trips, s.cfg.Core.PoolWindowSeconds, func(batch []model.Trip) error {
		return s.Ingest(ctx, batch, nil, nil)
	})
}

// Reinfer retrains and re-infers every non-empty shard concurrently, at most
// Workers shards at a time (0 = GOMAXPROCS). Each shard that succeeds swaps
// its serving state independently; failures are joined into the returned
// error with their shard index and do not disturb the other shards' swaps or
// the failing shard's previously served state.
func (s *ShardedEngine) Reinfer(ctx context.Context) error {
	// Seal every shard's open streamed window so this retrain sees whole
	// windows, and fix the WAL position the retrain will cover (held back
	// below any still-open stream's first point).
	s.ingestMu.Lock()
	s.sealStreamWindowsLocked(ctx)
	boundary := walBoundary(s.wal, s.ss)
	s.ingestMu.Unlock()

	s.mu.RLock()
	total := s.nTrips
	s.mu.RUnlock()
	if s.lcAuto {
		// The per-shard trip universe for LC normalization is the global
		// distinct trip count: replicas exist on several shards, but each is
		// one trip of one global dataset. Only in-process shards can be
		// pinned; remote topologies pin LCTotalTrips in each shard process's
		// own config instead (see NewShardedBackends).
		for _, sh := range s.shards {
			if sh != nil {
				sh.setLCTotalTrips(total)
			}
		}
	}

	workers := s.cfg.Core.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(s.backends))
	ran := make([]bool, len(s.backends))
	var wg sync.WaitGroup
	for i, b := range s.backends {
		// Empty region: nothing to train, keep any served state. In-process
		// shards answer from their counter; remote shards answer through the
		// seam's health summary.
		if sh := s.shards[i]; sh != nil {
			if sh.tripCount() == 0 {
				continue
			}
		} else if b.Status().Trips == 0 {
			continue
		}
		ran[i] = true
		wg.Add(1)
		go func(i int, b cluster.ShardBackend) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sctx, ssp := trace.Start(ctx, "engine.shard_reinfer")
			ssp.SetAttr("shard", i)
			if err := b.Reinfer(sctx); err != nil {
				errs[i] = fmt.Errorf("engine: shard %d: %w", i, err)
				ssp.RecordError(errs[i])
			}
			ssp.End()
		}(i, b)
	}
	wg.Wait()

	any, swapped := false, false
	var failed []error
	for i := range s.backends {
		if !ran[i] {
			continue
		}
		any = true
		if errs[i] != nil {
			failed = append(failed, errs[i])
		} else {
			swapped = true
		}
	}
	if !any {
		return errors.New("engine: no trips ingested")
	}
	if swapped {
		s.mu.Lock()
		s.reinfers++
		// Advance the truncation boundary only when every shard that ran
		// succeeded: a failed shard's trips live nowhere but the WAL.
		if len(failed) == 0 && boundary > s.reinferSeq {
			s.reinferSeq = boundary
		}
		s.mu.Unlock()
	}
	return errors.Join(failed...)
}

// StartReinfer launches Reinfer on the engine's root context in a background
// goroutine. While a job is running it returns that job's status with
// deploy.ErrReinferRunning.
func (s *ShardedEngine) StartReinfer() (deploy.JobStatus, error) {
	s.jobMu.Lock()
	if s.job != nil && s.job.State == deploy.JobRunning {
		js := *s.job
		s.jobMu.Unlock()
		return js, deploy.ErrReinferRunning
	}
	s.jobSeq++
	job := &deploy.JobStatus{ID: s.jobSeq, State: deploy.JobRunning}
	s.job = job
	// Snapshot before the goroutine exists: a fast job could finish (and
	// rewrite *job under jobMu) before this function returns.
	js := *job
	s.jobMu.Unlock()

	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		// Background jobs outlive their triggering request, so each gets its
		// own root span (same rationale as Engine.StartReinfer).
		ctx, root := s.cfg.Tracer.StartRoot(s.rootCtx, "engine.reinfer_job", trace.SpanContext{})
		root.SetAttr("job_id", job.ID)
		err := s.Reinfer(ctx)
		root.RecordError(err)
		root.End()
		s.jobMu.Lock()
		defer s.jobMu.Unlock()
		if err != nil {
			job.State = deploy.JobFailed
			job.Error = err.Error()
			return
		}
		job.State = deploy.JobDone
		job.Inferred = s.inferredCount()
	}()
	return js, nil
}

// ReinferStatus reports the latest background job; ok is false before the
// first StartReinfer.
func (s *ShardedEngine) ReinferStatus() (deploy.JobStatus, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if s.job == nil {
		return deploy.JobStatus{}, false
	}
	return *s.job, true
}

// publishRoutesLocked snapshots addrShard into a fresh immutable table for
// the lock-free query path. Callers must hold mu; routing mutations are rare
// (ingest windows, restores) so the copy never rides a query.
func (s *ShardedEngine) publishRoutesLocked() {
	rt := make(map[model.AddressID]int32, len(s.addrShard))
	for id, sh := range s.addrShard {
		rt[id] = int32(sh)
	}
	s.routes.Store(&rt)
}

// Query routes an address to its shard's served store: one atomic load of
// the routing table, one lookup, then the shard's own lock-free frozen-store
// read — no locks anywhere on the path. Unknown addresses — never ingested
// and absent from any restored manifest — answer SourceNone.
func (s *ShardedEngine) Query(addr model.AddressID) (geo.Point, deploy.Source) {
	rt := s.routes.Load()
	if rt == nil {
		shardUnroutedQueries.Inc()
		return geo.Point{}, deploy.SourceNone
	}
	sh, ok := (*rt)[addr]
	if !ok {
		shardUnroutedQueries.Inc()
		return geo.Point{}, deploy.SourceNone
	}
	s.routeCounters[sh].Inc()
	return s.backends[sh].Query(addr)
}

// QueryCtx is Query carrying the request context (deploy.ContextQuerier), so
// a remote shard hop propagates the caller's trace and request id. Backends
// without a context-aware read — in-process engines, whose Query is the
// lock-free frozen path — answer exactly like Query.
func (s *ShardedEngine) QueryCtx(ctx context.Context, addr model.AddressID) (geo.Point, deploy.Source) {
	rt := s.routes.Load()
	if rt == nil {
		shardUnroutedQueries.Inc()
		return geo.Point{}, deploy.SourceNone
	}
	sh, ok := (*rt)[addr]
	if !ok {
		shardUnroutedQueries.Inc()
		return geo.Point{}, deploy.SourceNone
	}
	s.routeCounters[sh].Inc()
	if cq, ok := s.backends[sh].(interface {
		QueryOne(context.Context, model.AddressID) (geo.Point, deploy.Source, error)
	}); ok {
		p, src, _ := cq.QueryOne(ctx, addr)
		return p, src
	}
	return s.backends[sh].Query(addr)
}

// QueryBatch is the batched scatter/gather read path: keys are grouped by
// owning shard from one routing-table load, the per-shard groups fan out to
// at most GOMAXPROCS workers (each answering from a single frozen-store
// load), and every worker writes results straight into the caller-visible
// positions — out[i] always answers addrs[i], so reassembly is free and
// input order is preserved by construction. Small batches and single-shard
// groups run inline rather than paying goroutine handoff. Cancelling ctx
// stops the remaining chunks and returns ctx's error.
func (s *ShardedEngine) QueryBatch(ctx context.Context, addrs []model.AddressID, out []deploy.BatchAnswer) ([]deploy.BatchAnswer, error) {
	out = deploy.GrowAnswers(out, len(addrs))
	rt := s.routes.Load()
	if rt == nil {
		shardUnroutedQueries.Add(int64(len(addrs)))
		for i := range out {
			out[i] = deploy.BatchAnswer{Src: deploy.SourceNone}
		}
		return out, ctx.Err()
	}

	sc := scatterPool.Get().(*scatter)
	defer sc.release()
	groups := sc.group(len(s.backends), *rt, addrs, out)

	active := 0
	last := -1
	for sh, idx := range groups {
		if len(idx) > 0 {
			active++
			last = sh
			s.routeCounters[sh].Add(int64(len(idx)))
		}
	}
	if active == 0 {
		return out, ctx.Err()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > active {
		workers = active
	}
	// One worker (or one populated shard, or a batch too small to amortize a
	// goroutine handoff): answer inline on the caller's goroutine.
	if workers == 1 || len(addrs) < 2*queryBatchChunk {
		for sh, idx := range groups {
			if len(idx) == 0 {
				continue
			}
			if err := s.backends[sh].QueryBatchIdx(ctx, addrs, idx, out); err != nil {
				return out, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers-1)
	for sh, idx := range groups {
		if len(idx) == 0 || sh == last {
			continue // the last group runs on the caller's goroutine below
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(sh int, idx []int32) {
			defer wg.Done()
			defer func() { <-sem }()
			sc.errs[sh] = s.backends[sh].QueryBatchIdx(ctx, addrs, idx, out)
		}(sh, idx)
	}
	sc.errs[last] = s.backends[last].QueryBatchIdx(ctx, addrs, groups[last], out)
	wg.Wait()
	for _, err := range sc.errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// InferredLocations merges every in-process shard's served address->location
// map into a fresh map (nil before any shard serves, and nil for remote
// shards — the wire carries per-key queries and snapshots, not bulk dumps).
// Shards own disjoint addresses, so the merge is a disjoint union.
func (s *ShardedEngine) InferredLocations() map[model.AddressID]geo.Point {
	var out map[model.AddressID]geo.Point
	for _, sh := range s.shards {
		if sh == nil {
			continue
		}
		locs := sh.InferredLocations()
		if len(locs) == 0 {
			continue
		}
		if out == nil {
			out = make(map[model.AddressID]geo.Point, len(locs)*len(s.shards))
		}
		for id, p := range locs {
			out[id] = p
		}
	}
	return out
}

// Status aggregates the shard statuses through the backend seam: counters
// are sums, Ready is true as soon as any shard serves, and the per-shard
// breakdown rides along for /healthz — remote shards carrying their owner's
// endpoint in Peer, and an unreachable one surfacing as a Failed shard
// rather than an error.
func (s *ShardedEngine) Status() deploy.EngineStatus {
	s.mu.RLock()
	out := deploy.EngineStatus{
		Dataset:  s.name,
		Trips:    s.nTrips,
		Reinfers: s.reinfers,
		Shards:   make([]deploy.ShardStatus, 0, len(s.backends)),
	}
	s.mu.RUnlock()
	for i, b := range s.backends {
		st := b.Status()
		out.Addresses += st.Addresses
		out.Inferred += st.Inferred
		out.PoolLocations += st.PoolLocations
		out.PendingTrips += st.PendingTrips
		if st.PendingAgeSeconds > out.PendingAgeSeconds {
			out.PendingAgeSeconds = st.PendingAgeSeconds
		}
		if st.Ready {
			out.Ready = true
		}
		if st.Failed {
			out.Failed = true
			if out.LastError == "" {
				out.LastError = fmt.Sprintf("shard %d: %s", i, st.LastError)
			}
		}
		shardSt := deploy.ShardStatus{Shard: i, EngineStatus: st}
		if ep, ok := b.(interface{ Endpoint() string }); ok {
			shardSt.Peer = ep.Endpoint()
		}
		out.Shards = append(out.Shards, shardSt)
	}
	s.jobMu.Lock()
	out.ReinferRunning = s.job != nil && s.job.State == deploy.JobRunning
	s.jobMu.Unlock()
	// Streams are tracked globally, not per shard.
	s.ingestMu.Lock()
	out.OpenStreams = s.ss.open()
	s.ingestMu.Unlock()
	return out
}

// inferredCount reports how many addresses the cluster serves: a bulk-map
// count for in-process shards, a summed health counter for remote ones.
func (s *ShardedEngine) inferredCount() int {
	if !s.remote {
		return len(s.InferredLocations())
	}
	n := 0
	for _, b := range s.backends {
		n += b.Status().Inferred
	}
	return n
}

// statically assert that ShardedEngine satisfies deploy's interfaces.
var (
	_ deploy.Engine         = (*ShardedEngine)(nil)
	_ deploy.ContextQuerier = (*ShardedEngine)(nil)
)
