package engine_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

// autoStub is a minimal deploy.Engine whose status the test scripts.
type autoStub struct {
	mu     sync.Mutex
	status deploy.EngineStatus
	starts int
}

func (s *autoStub) setStatus(st deploy.EngineStatus) {
	s.mu.Lock()
	s.status = st
	s.mu.Unlock()
}

func (s *autoStub) startCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.starts
}

func (s *autoStub) Query(model.AddressID) (geo.Point, deploy.Source) {
	return geo.Point{}, deploy.SourceNone
}

func (s *autoStub) Ingest(context.Context, []model.Trip, []model.AddressInfo, map[model.AddressID]geo.Point) error {
	return nil
}

func (s *autoStub) StartReinfer() (deploy.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.starts++
	// Once fired, the stub reports the job as running so the monitor must
	// not stack another start on the next ticks.
	s.status.ReinferRunning = true
	return deploy.JobStatus{ID: s.starts, State: deploy.JobRunning}, nil
}

func (s *autoStub) ReinferStatus() (deploy.JobStatus, bool) { return deploy.JobStatus{}, false }

func (s *autoStub) Status() deploy.EngineStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

func (s *autoStub) WriteSnapshot(io.Writer) error { return nil }

func waitStarts(t *testing.T, s *autoStub, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.startCount() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("auto reinfer fired %d times, want %d", s.startCount(), want)
}

func TestAutoReinferBacklogTrigger(t *testing.T) {
	s := &autoStub{}
	a := engine.StartAutoReinfer(s, engine.AutoReinferConfig{MaxPending: 10, Interval: time.Millisecond}, nil)
	defer a.Stop()

	// Below threshold: no fire.
	s.setStatus(deploy.EngineStatus{PendingTrips: 9})
	time.Sleep(20 * time.Millisecond)
	if got := s.startCount(); got != 0 {
		t.Fatalf("fired %d times below threshold", got)
	}

	s.setStatus(deploy.EngineStatus{PendingTrips: 10})
	waitStarts(t, s, 1)

	// While the job runs the monitor keeps watching without stacking.
	time.Sleep(20 * time.Millisecond)
	if got := s.startCount(); got != 1 {
		t.Fatalf("stacked %d starts while a job was running", got)
	}

	// Job done, backlog drained: still quiet.
	s.setStatus(deploy.EngineStatus{PendingTrips: 0})
	time.Sleep(20 * time.Millisecond)
	if got := s.startCount(); got != 1 {
		t.Fatalf("fired %d times with an empty backlog", got)
	}

	// Backlog crosses again: second fire.
	s.setStatus(deploy.EngineStatus{PendingTrips: 25})
	waitStarts(t, s, 2)
}

func TestAutoReinferAgeTrigger(t *testing.T) {
	s := &autoStub{}
	a := engine.StartAutoReinfer(s, engine.AutoReinferConfig{MaxAge: 10 * time.Second, Interval: time.Millisecond}, nil)
	defer a.Stop()

	// Young backlog: no fire regardless of size (only the age condition is
	// configured).
	s.setStatus(deploy.EngineStatus{PendingTrips: 1000, PendingAgeSeconds: 9})
	time.Sleep(20 * time.Millisecond)
	if got := s.startCount(); got != 0 {
		t.Fatalf("fired %d times below the age threshold", got)
	}

	s.setStatus(deploy.EngineStatus{PendingTrips: 1, PendingAgeSeconds: 10.5})
	waitStarts(t, s, 1)
}

func TestAutoReinferDisabled(t *testing.T) {
	if a := engine.StartAutoReinfer(&autoStub{}, engine.AutoReinferConfig{}, nil); a != nil {
		t.Fatal("monitor started with no condition configured")
	}
	// Stop on the nil monitor must be safe: callers wire it unconditionally.
	var a *engine.AutoReinfer
	a.Stop()
}

func TestPendingAgeSurfacesInStatus(t *testing.T) {
	e := engine.New(quickConfig())
	defer e.Close()
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	st := e.Status()
	if st.PendingTrips == 0 {
		t.Fatal("ingested trips did not pend")
	}
	if st.PendingAgeSeconds <= 0 {
		t.Fatalf("pending backlog reports age %v, want > 0", st.PendingAgeSeconds)
	}
	if st.Trips != len(ds.Trips) {
		t.Fatalf("status trips %d, want %d", st.Trips, len(ds.Trips))
	}
	if err := e.Reinfer(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = e.Status()
	if st.PendingTrips != 0 || st.PendingAgeSeconds != 0 {
		t.Fatalf("after reinfer: pending=%d age=%v, want both zero", st.PendingTrips, st.PendingAgeSeconds)
	}
}
