package engine_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/shard"
	"dlinfma/internal/traj"
)

// testRouter shards at precision 8 (cells ~38 m x 19 m at the projector's
// equatorial anchor) so the tiny synthetic world actually spreads across
// shards instead of collapsing into one coarse cell.
func testRouter(t *testing.T, n int) *shard.Router {
	t.Helper()
	r, err := shard.NewRouter(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// shardedShared memoizes one fully re-inferred 3-shard engine over the same
// dataset tinyEngine trains on, for the read-only sharded tests.
var shardedShared struct {
	once sync.Once
	s    *engine.ShardedEngine
	err  error
}

func tinySharded(t *testing.T) (*model.Dataset, *engine.ShardedEngine) {
	t.Helper()
	ds, _ := tinyEngine(t)
	shardedShared.once.Do(func() {
		r, err := shard.NewRouter(3, 8)
		if err != nil {
			shardedShared.err = err
			return
		}
		s := engine.NewSharded(quickConfig(), r)
		if err := s.IngestDataset(context.Background(), ds); err != nil {
			shardedShared.err = err
			return
		}
		if err := s.Reinfer(context.Background()); err != nil {
			shardedShared.err = err
			return
		}
		shardedShared.s = s
	})
	if shardedShared.err != nil {
		t.Fatal(shardedShared.err)
	}
	return ds, shardedShared.s
}

func TestShardedLifecycleParity(t *testing.T) {
	ds, s := tinySharded(t)
	single := tinyShared.e

	st := s.Status()
	if !st.Ready {
		t.Fatal("sharded engine not ready after re-inference")
	}
	if st.Addresses != len(ds.Addresses) {
		t.Errorf("sharded addresses = %d, want %d", st.Addresses, len(ds.Addresses))
	}
	if len(st.Shards) != 3 {
		t.Fatalf("status lists %d shards, want 3", len(st.Shards))
	}
	sum := 0
	loaded := 0
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d labelled %d", i, sh.Shard)
		}
		sum += sh.Addresses
		if sh.Addresses > 0 {
			loaded++
		}
	}
	if sum != st.Addresses {
		t.Errorf("per-shard addresses sum to %d, top-level says %d", sum, st.Addresses)
	}
	if loaded < 2 {
		t.Fatalf("only %d shards got addresses; routing collapsed", loaded)
	}

	// Every address the single engine serves is served by exactly one shard,
	// and the union covers the same address set.
	orig := single.InferredLocations()
	locs := s.InferredLocations()
	if len(locs) != len(orig) {
		t.Fatalf("sharded inferred %d addresses, single engine %d", len(locs), len(orig))
	}
	answered := 0
	for id := range orig {
		if _, src := s.Query(id); src != deploy.SourceNone {
			answered++
		}
	}
	if answered != len(orig) {
		t.Errorf("sharded engine answered %d/%d addresses", answered, len(orig))
	}
	if _, src := s.Query(model.AddressID(1 << 30)); src != deploy.SourceNone {
		t.Error("unknown address got an answer")
	}
}

// TestShardedFailedShardIsolation: a shard whose region has trips but no
// labelled addresses fails its retrain; the other shard still swaps and
// serves, and the error names the failed shard.
func TestShardedFailedShardIsolation(t *testing.T) {
	ds, _ := tinyEngine(t)
	// Clone the dataset keeping truth only for even addresses; route even
	// addresses to shard 0 and odd to shard 1, so shard 1 trains labelless.
	ds2 := &model.Dataset{
		Name:      ds.Name,
		Trips:     ds.Trips,
		Addresses: ds.Addresses,
		Truth:     make(map[model.AddressID]geo.Point),
	}
	for id, p := range ds.Truth {
		if id%2 == 0 {
			ds2.Truth[id] = p
		}
	}
	r := testRouter(t, 2)
	r.AssignAddress = func(a model.AddressInfo) int { return int(a.ID) % 2 }
	s := engine.NewSharded(quickConfig(), r)
	defer s.Close()
	if err := s.IngestDataset(context.Background(), ds2); err != nil {
		t.Fatal(err)
	}

	err := s.Reinfer(context.Background())
	if err == nil {
		t.Fatal("labelless shard did not fail")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the failed shard: %v", err)
	}
	st := s.Status()
	if !st.Ready {
		t.Fatal("healthy shard's swap was lost to the other shard's failure")
	}
	if st.Reinfers != 1 {
		t.Errorf("Reinfers = %d, want 1", st.Reinfers)
	}
	if !st.Shards[0].Ready || st.Shards[1].Ready {
		t.Errorf("per-shard readiness: %v/%v, want true/false",
			st.Shards[0].Ready, st.Shards[1].Ready)
	}
	// Shard 0's region answers; shard 1's region degrades to no answer.
	even, odd := 0, 0
	for _, a := range ds.Addresses {
		_, src := s.Query(a.ID)
		if a.ID%2 == 0 && src != deploy.SourceNone {
			even++
		}
		if a.ID%2 == 1 && src != deploy.SourceNone {
			odd++
		}
	}
	if even == 0 {
		t.Error("healthy shard serves nothing")
	}
	if odd != 0 {
		t.Errorf("failed shard answered %d queries from a swap that never happened", odd)
	}
}

// TestShardedBoundaryStays: an address whose delivery stay straddles a
// geohash cell edge (fixes alternate across lng 0, the top-level cell split)
// still gets its full trajectory evidence: the router assigns the trip by
// the waybill address's key, never by individual trajectory points, even
// when the trajectory midpoint falls in another shard's cell.
func TestShardedBoundaryStays(t *testing.T) {
	const addrID model.AddressID = 7
	addr := model.AddressInfo{ID: addrID, Building: 1, Geocode: geo.Point{X: -150, Y: 0}}
	truth := map[model.AddressID]geo.Point{addrID: {X: 0, Y: 0}}

	// One delivery stay: 12 fixes alternating 8 m west / 8 m east of x=0
	// (16 m jumps stay inside D_max=20 m of the anchor, 55 s > T_min=30 s),
	// then a run east so the trajectory midpoint lands well inside the
	// eastern cell.
	mkTrip := func(t0 float64) model.Trip {
		var tr traj.Trajectory
		for i := 0; i < 12; i++ {
			x := -8.0
			if i%2 == 1 {
				x = 8.0
			}
			tr = append(tr, traj.GPSPoint{P: geo.Point{X: x, Y: 0}, T: t0 + float64(i*5)})
		}
		for i := 0; i < 12; i++ {
			tr = append(tr, traj.GPSPoint{P: geo.Point{X: 60 + float64(i)*40, Y: 0}, T: t0 + 60 + float64(i*5)})
		}
		return model.Trip{
			Courier: 1,
			StartT:  t0,
			EndT:    t0 + 120,
			Traj:    tr,
			Waybills: []model.Waybill{{
				Addr:              addrID,
				ReceivedT:         t0,
				RecordedDeliveryT: t0 + 100,
				ActualDeliveryT:   t0 + 55,
			}},
		}
	}
	ds := &model.Dataset{
		Name:      "boundary",
		Trips:     []model.Trip{mkTrip(0), mkTrip(3600), mkTrip(7200)},
		Addresses: []model.AddressInfo{addr},
		Truth:     truth,
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}

	// Pick a shard count where the address's cell and the trajectory
	// midpoint's cell land on different shards, so per-point routing would
	// demonstrably lose the trip.
	var r *shard.Router
	var home, away int
	for n := 2; n <= 8; n++ {
		cand := testRouter(t, n)
		home = cand.AddressShard(addr)
		away = cand.TripShard(ds.Trips[0])
		if home != away {
			r = cand
			break
		}
	}
	if r == nil {
		t.Fatal("no shard count separates the address cell from the trip midpoint cell")
	}

	s := engine.NewSharded(quickConfig(), r)
	defer s.Close()
	if err := s.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if got := st.Shards[home].PendingTrips; got != len(ds.Trips) {
		t.Fatalf("address shard %d holds %d trips, want %d", home, got, len(ds.Trips))
	}
	if got := st.Shards[away].PendingTrips; got != 0 {
		t.Fatalf("midpoint shard %d stole %d trips", away, got)
	}

	// The home shard's pipeline retrieves the straddling stay as a candidate
	// within clustering distance of the true drop-off at the cell edge.
	parts := core.PartitionDataset(ds, r.N(), r.AddressShard, r.TripShard)
	pipe, err := core.NewPipeline(context.Background(), parts[home], quickConfig().Core)
	if err != nil {
		t.Fatal(err)
	}
	cands := pipe.RetrieveCandidates(addrID)
	if len(cands) == 0 {
		t.Fatal("no candidates for the boundary address on its home shard")
	}
	best := math.Inf(1)
	for _, c := range cands {
		if d := geo.Dist(pipe.Pool.Locations[c].Loc, truth[addrID]); d < best {
			best = d
		}
	}
	if best > 20 {
		t.Errorf("nearest candidate %.1f m from the boundary stay centroid", best)
	}

	if err := s.Reinfer(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, src := s.Query(addrID); src == deploy.SourceNone {
		t.Error("boundary address unanswered after re-inference")
	}
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	ds, s := tinySharded(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// An empty sharded engine has nothing to snapshot.
	empty := engine.NewSharded(quickConfig(), testRouter(t, 3))
	defer empty.Close()
	if err := empty.WriteSnapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot of an empty sharded engine must fail")
	}

	restored := engine.NewSharded(quickConfig(), testRouter(t, 3))
	defer restored.Close()
	if err := restored.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	orig, rest := s.InferredLocations(), restored.InferredLocations()
	if len(rest) != len(orig) {
		t.Fatalf("restored %d locations, want %d", len(rest), len(orig))
	}
	for id, p := range orig {
		if rest[id] != p {
			t.Fatalf("address %d restored at %v, want %v", id, rest[id], p)
		}
	}
	addr := deliveredAddr(t, ds)
	a, asrc := s.Query(addr)
	b, bsrc := restored.Query(addr)
	if a != b || asrc != bsrc {
		t.Errorf("query diverges after restore: %v/%v vs %v/%v", a, asrc, b, bsrc)
	}

	// Topology and version guards.
	wrongN := engine.NewSharded(quickConfig(), testRouter(t, 2))
	defer wrongN.Close()
	if err := wrongN.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("3-shard manifest accepted by a 2-shard engine")
	}
	single := engine.New(quickConfig())
	defer single.Close()
	if err := single.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("sharded manifest accepted by a single engine")
	}
	if err := restored.RestoreSnapshot(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("unknown snapshot version accepted")
	}
}

func TestShardedSnapshotFile(t *testing.T) {
	ds, s := tinySharded(t)
	dir := t.TempDir()
	path := dir + "/state.json"
	if err := s.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	// The manifest sits next to one file per ready shard.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	shardFiles := 0
	for _, f := range names {
		if strings.Contains(f.Name(), ".shard") {
			shardFiles++
		}
	}
	if shardFiles == 0 {
		t.Fatal("no per-shard snapshot files written")
	}

	restored := engine.NewSharded(quickConfig(), testRouter(t, 3))
	defer restored.Close()
	if err := restored.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	addr := deliveredAddr(t, ds)
	a, _ := s.Query(addr)
	b, _ := restored.Query(addr)
	if a != b {
		t.Errorf("file round trip: %v vs %v", a, b)
	}
	if err := restored.LoadSnapshotFile(path + ".missing"); err == nil {
		t.Error("missing manifest accepted")
	}
}

// TestShardedLegacyMigration: a version-1 single-engine snapshot restores
// into a sharded engine by routing its addresses across the shards; every
// previously served answer survives.
func TestShardedLegacyMigration(t *testing.T) {
	ds, e := tinyEngine(t)
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s := engine.NewSharded(quickConfig(), testRouter(t, 3))
	defer s.Close()
	if err := s.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if !st.Ready {
		t.Fatal("not ready after legacy migration")
	}
	orig := e.InferredLocations()
	for id, p := range orig {
		got, src := s.Query(id)
		if src == deploy.SourceNone || got != p {
			t.Fatalf("address %d: %v/%v after migration, want %v", id, got, src, p)
		}
	}
	spread := 0
	for _, sh := range st.Shards {
		if sh.Inferred > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("migration put all state on %d shard(s)", spread)
	}
	_ = ds
}

func TestShardedBackgroundReinferAndClose(t *testing.T) {
	ds, _ := tinyEngine(t)
	s := engine.NewSharded(quickConfig(), testRouter(t, 3))
	if err := s.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ReinferStatus(); ok {
		t.Fatal("job status before any job")
	}
	job, err := s.StartReinfer()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != deploy.JobRunning {
		t.Fatalf("started job %+v", job)
	}
	// Close joins the in-flight job before returning: afterwards the job is
	// settled and no goroutine can swap state anymore.
	s.Close()
	js, ok := s.ReinferStatus()
	if !ok || js.State == deploy.JobRunning {
		t.Fatalf("job still running after Close: %+v", js)
	}
	// Idempotent enough for deferred cleanup paths.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("second Close hung")
	}
}
