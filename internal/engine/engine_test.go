package engine_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

// quickConfig caps training so lifecycle tests run in seconds.
func quickConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Matcher.MaxEpochs = 2
	cfg.Matcher.LR = 1e-3
	return cfg
}

// tinyShared memoizes the generated dataset and one fully re-inferred engine
// for the read-only tests (training it once keeps the package fast).
var tinyShared struct {
	once sync.Once
	ds   *model.Dataset
	e    *engine.Engine
	err  error
}

func tinyEngine(t *testing.T) (*model.Dataset, *engine.Engine) {
	t.Helper()
	tinyShared.once.Do(func() {
		ds, _, err := synth.Generate(synth.Tiny())
		if err != nil {
			tinyShared.err = err
			return
		}
		e := engine.New(quickConfig())
		if err := e.IngestDataset(context.Background(), ds); err != nil {
			tinyShared.err = err
			return
		}
		if err := e.Reinfer(context.Background()); err != nil {
			tinyShared.err = err
			return
		}
		tinyShared.ds, tinyShared.e = ds, e
	})
	if tinyShared.err != nil {
		t.Fatal(tinyShared.err)
	}
	return tinyShared.ds, tinyShared.e
}

func deliveredAddr(t *testing.T, ds *model.Dataset) model.AddressID {
	t.Helper()
	for _, tr := range ds.Trips {
		if len(tr.Waybills) > 0 {
			return tr.Waybills[0].Addr
		}
	}
	t.Fatal("no delivered address")
	return 0
}

func TestEngineLifecycle(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(quickConfig())
	defer e.Close()
	ctx := context.Background()

	if _, src := e.Query(deliveredAddr(t, ds)); src != deploy.SourceNone {
		t.Fatalf("empty engine answered with source %v", src)
	}
	if st := e.Status(); st.Ready {
		t.Fatal("empty engine reports ready")
	}
	if err := e.Reinfer(ctx); err == nil {
		t.Fatal("Reinfer on an empty engine must fail")
	}

	if err := e.IngestDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	st := e.Status()
	if st.Ready || st.Addresses != len(ds.Addresses) || st.PendingTrips != len(ds.Trips) {
		t.Fatalf("post-ingest status %+v", st)
	}

	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	st = e.Status()
	if !st.Ready || st.Inferred == 0 || st.PoolLocations == 0 {
		t.Fatalf("post-reinfer status %+v", st)
	}
	if st.PendingTrips != 0 {
		t.Errorf("%d trips still pending after re-inference", st.PendingTrips)
	}
	if st.Reinfers != 1 {
		t.Errorf("Reinfers = %d, want 1", st.Reinfers)
	}
	if _, src := e.Query(deliveredAddr(t, ds)); src == deploy.SourceNone {
		t.Error("no answer for a delivered address after re-inference")
	}
	if e.Matcher() == nil {
		t.Error("no served matcher after re-inference")
	}
}

// TestEngineFailedStatus pins the health semantics behind /healthz: a failed
// re-inference sets Failed/LastError, a cancellation does not touch them, and
// the next success clears them.
func TestEngineFailedStatus(t *testing.T) {
	ds, _ := tinyEngine(t)
	e := engine.New(quickConfig())
	defer e.Close()

	// Reinfer with nothing ingested is a real failure.
	if err := e.Reinfer(context.Background()); err == nil {
		t.Fatal("Reinfer on an empty engine must fail")
	}
	st := e.Status()
	if !st.Failed || st.LastError == "" {
		t.Fatalf("status after failed reinfer %+v", st)
	}

	if err := e.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}

	// Cancellation is shutdown, not ill health: Failed stays as it was.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Reinfer(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Reinfer: %v", err)
	}
	if st := e.Status(); !st.Failed {
		t.Fatalf("cancellation overwrote the failure record: %+v", st)
	}

	// A successful run clears the record.
	if err := e.Reinfer(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = e.Status()
	if st.Failed || st.LastError != "" {
		t.Fatalf("status after successful reinfer %+v", st)
	}
}

func TestEngineReinferCancelled(t *testing.T) {
	ds, _ := tinyEngine(t)
	e := engine.New(quickConfig())
	defer e.Close()
	if err := e.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled: the first cooperative check aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Reinfer(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Reinfer: got %v, want context.Canceled", err)
	}

	// Cancelled mid-flight: featurization + training take well over 5 ms on
	// the tiny profile, so the cancel lands while compute is running.
	ctx, cancel = context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	err := e.Reinfer(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled Reinfer took %v to return", d)
	}
	// The served state is untouched by the aborted runs.
	if st := e.Status(); st.Ready || st.Reinfers != 0 {
		t.Errorf("aborted re-inference leaked state: %+v", st)
	}
}

func TestEngineIngestCancelled(t *testing.T) {
	ds, _ := tinyEngine(t)
	e := engine.New(quickConfig())
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.Ingest(ctx, ds.Trips[:2], ds.Addresses, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := e.Status(); st.PendingTrips != 0 {
		t.Errorf("cancelled ingest left %d pending trips", st.PendingTrips)
	}
}

func TestEngineHotSwapUnderLoad(t *testing.T) {
	ds, _ := tinyEngine(t)
	e := engine.New(quickConfig())
	defer e.Close()
	ctx := context.Background()
	if err := e.IngestDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	addr := deliveredAddr(t, ds)
	if _, src := e.Query(addr); src == deploy.SourceNone {
		t.Fatal("no served answer before the swap test")
	}

	// Hammer Query from many goroutines while a full re-inference swaps the
	// serving state underneath them: every query must get an answer, before,
	// during, and after the swap (run with -race to check the lock domains).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, src := e.Query(addr); src == deploy.SourceNone {
					select {
					case errs <- errors.New("query lost its answer during hot swap"):
					default:
					}
					return
				}
			}
		}()
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if st := e.Status(); st.Reinfers != 2 {
		t.Errorf("Reinfers = %d, want 2", st.Reinfers)
	}
	if _, src := e.Query(addr); src == deploy.SourceNone {
		t.Error("no answer after the swap")
	}
}

func TestEngineBackgroundReinfer(t *testing.T) {
	ds, _ := tinyEngine(t)
	e := engine.New(quickConfig())
	defer e.Close()
	if err := e.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.ReinferStatus(); ok {
		t.Fatal("job status before any job")
	}
	job, err := e.StartReinfer()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != deploy.JobRunning || job.ID != 1 {
		t.Fatalf("started job %+v", job)
	}
	// A second start while the first is in flight reports the running job.
	if again, err := e.StartReinfer(); !errors.Is(err, deploy.ErrReinferRunning) {
		t.Fatalf("concurrent StartReinfer: %+v, %v", again, err)
	} else if again.ID != job.ID {
		t.Fatalf("conflict reported job %d, want %d", again.ID, job.ID)
	}

	deadline := time.After(2 * time.Minute)
	for {
		js, ok := e.ReinferStatus()
		if !ok {
			t.Fatal("job status vanished")
		}
		if js.State == deploy.JobDone {
			if js.Inferred == 0 {
				t.Errorf("finished job inferred nothing: %+v", js)
			}
			break
		}
		if js.State == deploy.JobFailed {
			t.Fatalf("background job failed: %s", js.Error)
		}
		select {
		case <-deadline:
			t.Fatal("background re-inference did not finish")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if st := e.Status(); !st.Ready || st.ReinferRunning {
		t.Errorf("status after background job %+v", st)
	}
}

func TestEngineCloseAbortsBackgroundJob(t *testing.T) {
	ds, _ := tinyEngine(t)
	e := engine.New(quickConfig())
	if err := e.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StartReinfer(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	deadline := time.After(30 * time.Second)
	for {
		js, _ := e.ReinferStatus()
		if js.State == deploy.JobFailed {
			break // aborted by the cancelled root context
		}
		if js.State == deploy.JobDone {
			break // the job beat the cancel; also fine
		}
		select {
		case <-deadline:
			t.Fatal("job still running after Close")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	ds, e := tinyEngine(t)
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := engine.New(quickConfig())
	defer restored.Close()
	if err := restored.WriteSnapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot of an empty engine must fail")
	}
	if err := restored.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	st := restored.Status()
	if !st.Ready || st.Inferred != e.Status().Inferred || st.Addresses != len(ds.Addresses) {
		t.Fatalf("restored status %+v vs original %+v", st, e.Status())
	}
	if restored.Matcher() == nil {
		t.Error("trained matcher lost in the snapshot round trip")
	}
	// Every served location survives bit-for-bit.
	orig, rest := e.InferredLocations(), restored.InferredLocations()
	if len(rest) != len(orig) {
		t.Fatalf("restored %d locations, want %d", len(rest), len(orig))
	}
	for id, p := range orig {
		if rest[id] != p {
			t.Fatalf("address %d restored at %v, want %v", id, rest[id], p)
		}
	}
	addr := deliveredAddr(t, ds)
	a, asrc := e.Query(addr)
	b, bsrc := restored.Query(addr)
	if a != b || asrc != bsrc {
		t.Errorf("query diverges after restore: %v/%v vs %v/%v", a, asrc, b, bsrc)
	}

	if err := restored.RestoreSnapshot(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestEngineSnapshotFile(t *testing.T) {
	ds, e := tinyEngine(t)
	path := t.TempDir() + "/state.json"
	if err := e.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	restored := engine.New(quickConfig())
	defer restored.Close()
	if err := restored.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	addr := deliveredAddr(t, ds)
	a, _ := e.Query(addr)
	b, _ := restored.Query(addr)
	if a != b {
		t.Errorf("file round trip: %v vs %v", a, b)
	}
	if err := restored.LoadSnapshotFile(path + ".missing"); err == nil {
		t.Error("missing snapshot file accepted")
	}
}
