// End-to-end tracing acceptance: a traced request served by a 2-shard
// engine during a concurrent background re-inference must yield, through
// the debug API's store, one trace whose span tree links the HTTP root to
// per-shard ingest spans and core pipeline stage spans — with the same
// trace id stamped on the log lines and the legacy stage histograms still
// counting.
package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/engine"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/synth"

	"net/http/httptest"
)

// stageCount scrapes the process-wide registry for one pipeline stage's
// histogram sample count.
func stageCount(t *testing.T, stage string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fam := fams["dlinfma_pipeline_stage_duration_seconds"]
	if fam == nil {
		return 0
	}
	for _, s := range fam.Samples {
		if strings.HasSuffix(s.Name, "_count") && s.Labels["stage"] == stage {
			return s.Value
		}
	}
	return 0
}

func TestTracedRequestThroughShardedEngine(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	log := obs.NewLogger(&logBuf, obs.LevelDebug, obs.FormatLogfmt)
	store := trace.NewStore(64)
	tracer := trace.NewTracer(trace.Options{SampleProb: 1, Store: store})

	cfg := quickConfig()
	cfg.Logger = log
	cfg.Tracer = tracer
	s := engine.NewSharded(cfg, testRouter(t, 2))
	defer s.Close()
	if err := s.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(deploy.NewService(s, deploy.Options{Logger: log, Tracer: tracer}))
	defer srv.Close()
	c := srv.Client()

	poolWindowBefore := stageCount(t, "pool_window")
	fitBefore := stageCount(t, "fit")

	// Kick off the background re-inference the traced request must overlap.
	resp, err := c.Post(srv.URL+"/v1/reinfer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reinfer start status %d", resp.StatusCode)
	}

	// The traced request: a synthetic upstream traceparent plus a client
	// request id, re-ingesting the dataset's trips so both shards get work.
	body, err := json.Marshal(api.IngestRequest{Trips: ds.Trips})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	req.Header.Set("X-Request-ID", "e2e-trace-req")
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "e2e-trace-req" {
		t.Fatalf("request id not echoed: %q", got)
	}
	echo, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || echo.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("response traceparent %q does not continue the incoming trace", resp.Header.Get("Traceparent"))
	}

	// The root span publishes after the response flushes; poll the store.
	tid, _ := trace.ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	var tr *trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for tr = store.Get(tid); tr == nil; tr = store.Get(tid) {
		if time.Now().After(deadline) {
			t.Fatal("traced request never reached the store")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Walk the span tree: HTTP root -> engine.shard_ingest{shard} ->
	// engine.ingest -> pool_window (a core pipeline stage span).
	byID := map[string]trace.SpanData{}
	for _, sd := range tr.Spans {
		byID[sd.SpanID] = sd
	}
	var root trace.SpanData
	shardsSeen := map[int]bool{}
	for _, sd := range tr.Spans {
		switch sd.Name {
		case "/v1/ingest":
			root = sd
			if sd.ParentID != "b7ad6b7169203331" {
				t.Errorf("HTTP root's parent is %q, want the remote span b7ad6b7169203331", sd.ParentID)
			}
		case "engine.shard_ingest":
			if p := byID[sd.ParentID]; p.Name != "/v1/ingest" {
				t.Errorf("shard_ingest parent is %q, want the HTTP root", p.Name)
			}
			for _, a := range sd.Attrs {
				if a.Key == "shard" {
					shardsSeen[a.Value.(int)] = true
				}
			}
		case "engine.ingest":
			if p := byID[sd.ParentID]; p.Name != "engine.shard_ingest" {
				t.Errorf("engine.ingest parent is %q, want engine.shard_ingest", p.Name)
			}
		case "pool_window":
			if p := byID[sd.ParentID]; p.Name != "engine.ingest" {
				t.Errorf("pool_window parent is %q, want engine.ingest", p.Name)
			}
		}
	}
	if root.Name == "" {
		t.Fatal("HTTP root span missing from the trace")
	}
	if !shardsSeen[0] || !shardsSeen[1] {
		t.Fatalf("per-shard spans cover shards %v, want both 0 and 1", shardsSeen)
	}
	count := func(name string) int {
		n := 0
		for _, sd := range tr.Spans {
			if sd.Name == name {
				n++
			}
		}
		return n
	}
	if count("pool_window") == 0 {
		t.Fatal("no core pipeline stage span in the request trace")
	}

	// Wait for the background job, then quiesce so the log buffer is safe to
	// read.
	for {
		var job api.JobStatus
		r, err := c.Get(srv.URL + "/v1/reinfer")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if job.State != api.JobRunning {
			if job.State != api.JobDone {
				t.Fatalf("background reinfer ended %q: %s", job.State, job.Error)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Close()
	s.Close()

	// The background job minted its own root trace with per-shard reinfer
	// spans and training-stage spans.
	var jobTrace *trace.Trace
	for _, cand := range store.List(trace.Filter{}) {
		if cand.Root == "engine.reinfer_job" {
			jobTrace = cand
			break
		}
	}
	if jobTrace == nil {
		t.Fatal("background reinfer job trace missing")
	}
	jobNames := map[string]int{}
	for _, sd := range jobTrace.Spans {
		jobNames[sd.Name]++
	}
	for _, want := range []string{"engine.shard_reinfer", "engine.reinfer", "engine.hot_swap", "pool_finalize", "feature_build", "fit", "predict"} {
		if jobNames[want] == 0 {
			t.Errorf("job trace missing %q spans (got %v)", want, jobNames)
		}
	}

	// Legacy stage histograms still count under tracing.
	if got := stageCount(t, "pool_window"); got <= poolWindowBefore {
		t.Errorf("pool_window histogram did not move: %v -> %v", poolWindowBefore, got)
	}
	if got := stageCount(t, "fit"); got <= fitBefore {
		t.Errorf("fit histogram did not move: %v -> %v", fitBefore, got)
	}

	// Log correlation: the engine's ingest lines carry the request trace id.
	logs := logBuf.String()
	if !strings.Contains(logs, "trace_id=0af7651916cd43dd8448eb211c80319c") {
		t.Error("no log line stamped with the request trace id")
	}
	if !strings.Contains(logs, "request_id=e2e-trace-req") {
		t.Error("no access line carrying the client request id")
	}
}
