// Package engine owns the full DLInfMA serving lifecycle of Section V-F /
// Figure 14: incremental dataset ingest (bi-weekly trip windows appended to
// the candidate pool without reprocessing history), LocMatcher training,
// full re-inference, snapshot persistence, and atomic hot-swap of the
// (pool, model, store) triple so queries never block on retraining.
//
// Concurrency contract: three small lock domains, never held across model
// compute.
//
//   - mu guards the accumulating dataset (trips, addresses, truth, the
//     IncrementalPoolBuilder). Ingest mutates it; Reinfer snapshots it.
//   - stateMu guards the immutable serving triple. Reinfer builds a fresh
//     state off-lock and swaps the pointer under a brief write lock;
//     Query takes a read lock only to load the pointer.
//   - jobMu guards background re-inference bookkeeping.
//
// Cancellation contract: every long-running stage (pool build, sample
// featurization, training, batch inference) threads context.Context into
// the worker pools and returns ctx.Err() promptly on cancellation, leaving
// the served state untouched. Close cancels the engine's root context,
// aborting any background re-inference.
package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/wal"
)

// Config bundles the engine's pipeline, model, and training knobs.
type Config struct {
	Core    core.Config
	Matcher core.LocMatcherConfig
	Sample  core.SampleOptions
	// Stream bounds the online point-by-point ingest path (stream.go). The
	// zero value inherits the batch path's window grid and sane gap bounds.
	Stream StreamConfig
	// MaxPendingTrips bounds the ingest backlog: once this many trips have
	// accumulated since the served state was built, live ingest (batch and
	// streamed) answers deploy.ErrBackpressure until a re-inference drains
	// the backlog. 0 = unbounded.
	MaxPendingTrips int
	// ValFraction is the share of labelled samples held out for early
	// stopping during re-inference training (0 trains on everything).
	ValFraction float64
	// SwapHistory sizes the ring of hot-swap churn reports kept for
	// GET /v1/debug/swaps (0 = 32).
	SwapHistory int
	// LowConfidence is the top-1 probability below which an address-level
	// answer counts as low-confidence in the churn report, the
	// low-confidence-address gauge, and the serving-query counter (0 = 0.5).
	LowConfidence float64
	// Logger receives lifecycle events (ingest, re-inference, snapshot,
	// hot-swap). nil logs nothing — every obs.Logger method is nil-safe.
	Logger *obs.Logger
	// Tracer mints root spans for background jobs (request-path spans ride
	// the caller's context instead). nil traces nothing — every trace method
	// is nil-safe.
	Tracer *trace.Tracer
}

// DefaultConfig returns the paper's defaults with a 20% validation holdout.
func DefaultConfig() Config {
	return Config{
		Core:        core.DefaultConfig(),
		Matcher:     core.DefaultLocMatcherConfig(),
		Sample:      core.DefaultSampleOptions(),
		ValFraction: 0.2,
	}
}

// state is one immutable serving snapshot: everything a query or snapshot
// write needs. Fields are never mutated after the swap; a restored snapshot
// has pipe == nil (the pool cannot be reconstructed from inferred locations
// alone).
type state struct {
	pipe    *core.Pipeline
	matcher *core.LocMatcher
	store   *deploy.Store
	locs    map[model.AddressID]geo.Point
}

// Engine owns the DLInfMA lifecycle. The zero value is not usable; call New.
type Engine struct {
	cfg Config
	log *obs.Logger

	// rootCtx bounds background jobs; Close cancels it.
	rootCtx context.Context
	cancel  context.CancelFunc

	// mu guards the accumulating ingest state.
	mu       sync.Mutex
	name     string
	builder  *core.IncrementalPoolBuilder
	trips    []model.Trip
	addrs    []model.AddressInfo
	addrSeen map[model.AddressID]bool
	truth    map[model.AddressID]geo.Point
	// pending counts trips ingested after the served state was built;
	// pendingSince is when the current backlog started accumulating (zero
	// while it is empty) — the age the auto-reinfer trigger watches.
	pending      int
	pendingSince time.Time
	// ss tracks open courier streams and the streamed pool window.
	ss *streamSet
	// wal, when attached, logs every accepted ingest operation for crash
	// recovery; reinferSeq is the WAL position the last completed
	// re-inference covered, safe to truncate through once a snapshot of
	// that state reaches durable storage.
	wal        *wal.WAL
	reinferSeq uint64

	// stateMu guards the hot-swapped serving state and the health record of
	// the last re-inference attempt.
	stateMu  sync.RWMutex
	st       *state
	reinfers int
	// frozen is the lock-free read path: the served store's fallback chain
	// precomputed into an immutable deploy.FrozenStore, republished atomically
	// at every hot-swap. Query loads the pointer and does one map lookup —
	// no locks, no allocations. nil until the first swap.
	frozen atomic.Pointer[deploy.FrozenStore]
	// failed is set when the most recent re-inference attempt errored (not
	// counting cancellation, which is an orderly shutdown, not ill health);
	// lastErr keeps the message for /healthz and /v1/reinfer status.
	failed  bool
	lastErr string

	// jobMu guards the background re-inference job.
	jobMu  sync.Mutex
	jobSeq int
	job    *deploy.JobStatus
	// jobWG tracks the background goroutine itself so Close can join it:
	// cancellation alone would let a snapshot save race a mid-swap state.
	jobWG sync.WaitGroup

	// shardLabel tags this engine's quality metrics and swap reports:
	// "global" standalone, the shard index when owned by a ShardedEngine
	// (set before any ingest or serving starts).
	shardLabel string
	// lowConf is the resolved Config.LowConfidence threshold the read path
	// compares answer confidence against.
	lowConf float32
	// swaps rings the last Config.SwapHistory hot-swap churn reports.
	swaps *swapRing
}

// New returns an empty engine. Close it to cancel background work.
func New(cfg Config) *Engine {
	ctx, cancel := context.WithCancel(context.Background())
	lowConf := cfg.LowConfidence
	if lowConf <= 0 {
		lowConf = defaultLowConfidence
	}
	return &Engine{
		cfg:        cfg,
		log:        cfg.Logger,
		rootCtx:    ctx,
		cancel:     cancel,
		builder:    core.NewIncrementalPoolBuilder(cfg.Core),
		addrSeen:   make(map[model.AddressID]bool),
		truth:      make(map[model.AddressID]geo.Point),
		ss:         newStreamSet(cfg.Stream, cfg.Core),
		shardLabel: "global",
		lowConf:    float32(lowConf),
		swaps:      newSwapRing(cfg.SwapHistory),
	}
}

// Close cancels the engine's root context and joins any in-flight background
// re-inference, so after Close returns no goroutine can swap serving state —
// a subsequent SaveSnapshotFile observes a settled engine. The served state
// stays queryable.
func (e *Engine) Close() {
	e.cancel()
	e.jobWG.Wait()
}

// SetName labels the accumulating dataset (used in status and snapshots).
func (e *Engine) SetName(name string) {
	e.mu.Lock()
	e.name = name
	e.mu.Unlock()
}

// Ingest appends one window of trips plus any new addresses and ground
// truth. The window is clustered and merged into the candidate pool
// immediately (the paper's bi-weekly pool maintenance); the served state is
// not touched until the next Reinfer. Cancelling ctx mid-window returns
// ctx.Err() with the pool unchanged.
func (e *Engine) Ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) error {
	return e.ingest(ctx, trips, addrs, truth, true)
}

// ingest is the shared live/replay core of Ingest. A live window is rejected
// under backpressure before any state changes, and appended to the WAL only
// after the whole window applied — a rejected or cancelled window never
// enters the log. (A WAL append that itself fails leaves the window applied
// but unacknowledged; the caller's retry then duplicates it, the same
// at-least-once edge every acknowledge-after-apply log has.)
func (e *Engine) ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point, live bool) error {
	ctx, tsp := trace.Start(ctx, "engine.ingest")
	tsp.SetAttr("trips", len(trips))
	defer tsp.End()
	e.mu.Lock()
	defer e.mu.Unlock()
	if live && len(trips) > 0 && e.cfg.MaxPendingTrips > 0 && e.pending >= e.cfg.MaxPendingTrips {
		backpressureRejects.Inc()
		return deploy.ErrBackpressure
	}
	newAddrs := 0
	for _, a := range addrs {
		if !e.addrSeen[a.ID] {
			e.addrSeen[a.ID] = true
			e.addrs = append(e.addrs, a)
			newAddrs++
		}
	}
	ingestAddrs.Add(int64(newAddrs))
	for id, p := range truth {
		e.truth[id] = p
	}
	if len(trips) > 0 {
		// Seal any pending streamed trips first so the batch window clusters
		// exactly the trips it was handed — streamed and batch windows stay
		// distinct pool windows.
		e.sealStreamWindowLocked(ctx)
		if err := e.builder.AddWindow(ctx, trips); err != nil {
			tsp.RecordError(err)
			return err
		}
		e.trips = append(e.trips, trips...)
		e.addPendingLocked(len(trips))
		ingestTrips.Add(int64(len(trips)))
		ingestWindows.Inc()
	} else if len(addrs) == 0 && len(truth) == 0 {
		return nil
	}
	if live && e.wal != nil {
		if _, err := e.wal.Append(encodeWALIngest(trips, addrs, truth)); err != nil {
			tsp.RecordError(err)
			return err
		}
	}
	e.log.WithTrace(ctx).Debug("ingest window",
		"trips", len(trips), "new_addrs", newAddrs, "total_trips", len(e.trips))
	return nil
}

// IngestDataset feeds a whole dataset through Ingest in PoolWindowSeconds
// windows — the offline path (cmd infer/eval) and the serve subcommand's
// initial load use it so batch and online runs share one code path.
func (e *Engine) IngestDataset(ctx context.Context, ds *model.Dataset) error {
	e.mu.Lock()
	if e.name == "" {
		e.name = ds.Name
	}
	e.mu.Unlock()
	if err := e.Ingest(ctx, nil, ds.Addresses, ds.Truth); err != nil {
		return err
	}
	return forEachWindow(ds.Trips, e.cfg.Core.PoolWindowSeconds, func(batch []model.Trip) error {
		return e.Ingest(ctx, batch, nil, nil)
	})
}

// forEachWindow splits trips into PoolWindowSeconds batches anchored at the
// first trip's start and feeds each batch to ingest. The sharded engine uses
// the same splitter before routing, so window boundaries are global — a
// shard's windows never drift from the windows one global engine would see.
func forEachWindow(trips []model.Trip, window float64, ingest func([]model.Trip) error) error {
	if window <= 0 {
		window = 14 * 86400
	}
	var batch []model.Trip
	var windowEnd float64
	for i, tr := range trips {
		if i == 0 {
			windowEnd = tr.StartT + window
		}
		if tr.StartT >= windowEnd {
			if err := ingest(batch); err != nil {
				return err
			}
			batch = nil
			for tr.StartT >= windowEnd {
				windowEnd += window
			}
		}
		batch = append(batch, tr)
	}
	if len(batch) > 0 {
		return ingest(batch)
	}
	return nil
}

// Reinfer runs the full second stage over everything ingested so far:
// finalize the incremental pool, featurize every address, train a fresh
// LocMatcher, predict every address, and atomically swap the new
// (pool, model, store) triple into service. Queries keep hitting the old
// state until the swap. Cancelling ctx aborts at the next cooperative
// check and leaves the served state untouched.
func (e *Engine) Reinfer(ctx context.Context) error {
	ctx, tsp := trace.Start(ctx, "engine.reinfer")
	sp := obs.StartSpan("reinfer", reinferDuration)
	err := e.reinfer(ctx)
	tsp.RecordError(err)
	tsp.End()
	d := sp.End()
	log := e.log.WithTrace(ctx)
	switch {
	case err == nil:
		reinferSuccess.Inc()
		e.setHealth(false, "")
		log.Info("reinfer done", "dur", d)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Shutdown or deadline, not ill health: the served state is intact
		// and the engine is as healthy as it was before the attempt.
		reinferCanceled.Inc()
		log.Warn("reinfer canceled", "dur", d, "err", err)
	default:
		reinferFailure.Inc()
		e.setHealth(true, err.Error())
		log.Error("reinfer failed", "dur", d, "err", err)
	}
	return err
}

// setHealth records the outcome of the last consequential re-inference
// attempt (success or failure; cancellations don't touch it).
func (e *Engine) setHealth(failed bool, msg string) {
	e.stateMu.Lock()
	e.failed = failed
	e.lastErr = msg
	e.stateMu.Unlock()
}

func (e *Engine) reinfer(ctx context.Context) error {
	// Snapshot the ingest state under mu; all compute happens off-lock on
	// the snapshot (builder.Finalize itself is cheap relative to training
	// and must run under mu since Ingest mutates the builder).
	e.mu.Lock()
	if len(e.trips) == 0 {
		e.mu.Unlock()
		return errors.New("engine: no trips ingested")
	}
	// Everything logged up to here (minus still-open streams) is about to be
	// folded into the new serving state; once that state is snapshotted, the
	// WAL below this boundary is dead weight.
	boundary := e.walBoundaryLocked()
	e.sealStreamWindowLocked(ctx)
	pool := e.builder.FinalizeCtx(ctx)
	ds := &model.Dataset{
		Name:      e.name,
		Trips:     e.trips[:len(e.trips):len(e.trips)],
		Addresses: append([]model.AddressInfo(nil), e.addrs...),
		Truth:     make(map[model.AddressID]geo.Point, len(e.truth)),
	}
	for id, p := range e.truth {
		ds.Truth[id] = p
	}
	nTrips := len(e.trips)
	// Snapshot the config under mu: a sharded owner may adjust the LC
	// normalization (setLCTotalTrips) between re-inferences.
	cfg := e.cfg
	e.mu.Unlock()

	pipe := core.NewPipelineWithPool(ds, cfg.Core, pool)
	ids := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		ids[i] = a.ID
	}
	samples, err := pipe.BuildSamplesCtx(ctx, ids, cfg.Sample)
	if err != nil {
		return err
	}
	core.LabelSamples(samples, ds.Truth)

	var labelled []*core.Sample
	for _, s := range samples {
		if s.Label >= 0 {
			labelled = append(labelled, s)
		}
	}
	nVal := int(float64(len(labelled)) * cfg.ValFraction)
	mcfg := cfg.Matcher
	if mcfg.Workers == 0 {
		mcfg.Workers = cfg.Core.Workers
	}
	matcher := core.NewLocMatcher(mcfg)
	if _, err := matcher.Fit(ctx, labelled[nVal:], labelled[:nVal]); err != nil {
		return err
	}
	// The full probability distributions, not just argmax indices: the top-1
	// probability is the confidence stamp behind each served answer. The
	// local argmax below replicates Predict exactly (nil distribution for a
	// candidate-less sample, strict > tie-breaking toward the lower index),
	// so predictions are bit-identical to the PredictAll path.
	probs, err := matcher.ProbabilitiesAll(ctx, samples)
	if err != nil {
		return err
	}
	confHist := reinferConfidence.With(e.shardLabel)
	store := deploy.NewStore()
	store.LoadDataset(ds)
	locs := make(map[model.AddressID]geo.Point, len(samples))
	for i, s := range samples {
		pred, conf := argmaxProb(probs[i])
		loc := s.PredictedLocation(pred)
		store.Put(s.Addr, loc)
		if pred >= 0 {
			store.SetConfidence(s.Addr, float32(conf))
			confHist.Observe(conf)
		}
		locs[s.Addr] = loc
	}

	_, swapSp := trace.Start(ctx, "engine.hot_swap")
	e.publish(&state{pipe: pipe, matcher: matcher, store: store, locs: locs}, swapKindReinfer)
	e.stateMu.Lock()
	e.reinfers++
	e.stateMu.Unlock()
	swapSp.End()

	e.mu.Lock()
	e.pending = len(e.trips) - nTrips
	// Trips that raced the retrain arrived somewhere during it; restarting
	// their age at the swap slightly underestimates, which only delays the
	// age-based auto-reinfer trigger by at most one training run.
	if e.pending > 0 {
		e.pendingSince = time.Now()
	} else {
		e.pendingSince = time.Time{}
	}
	if boundary > e.reinferSeq {
		e.reinferSeq = boundary
	}
	e.mu.Unlock()
	return nil
}

// argmaxProb reduces one candidate distribution to (predicted index, top-1
// probability): -1 for a candidate-less sample (nil distribution), otherwise
// the strict-> argmax — the same inference rule as LocMatcher.Predict.
func argmaxProb(probs []float64) (int, float64) {
	if len(probs) == 0 {
		return -1, 0
	}
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best, probs[best]
}

// addPendingLocked grows the pending-trip backlog, stamping the backlog's
// start time when it goes from empty to non-empty. Callers hold mu.
func (e *Engine) addPendingLocked(n int) {
	if n <= 0 {
		return
	}
	if e.pending == 0 {
		e.pendingSince = time.Now()
	}
	e.pending += n
}

// StartReinfer launches Reinfer on the engine's root context in a
// background goroutine. While a job is running it returns that job's
// status with deploy.ErrReinferRunning.
func (e *Engine) StartReinfer() (deploy.JobStatus, error) {
	e.jobMu.Lock()
	if e.job != nil && e.job.State == deploy.JobRunning {
		js := *e.job
		e.jobMu.Unlock()
		return js, deploy.ErrReinferRunning
	}
	e.jobSeq++
	job := &deploy.JobStatus{ID: e.jobSeq, State: deploy.JobRunning}
	e.job = job
	// Snapshot before the goroutine exists: a fast job could finish (and
	// rewrite *job under jobMu) before this function returns.
	js := *job
	e.jobMu.Unlock()

	e.jobWG.Add(1)
	go func() {
		defer e.jobWG.Done()
		// A background job outlives the request that kicked it off (202 is
		// long gone by the time training ends), so it gets its own root
		// span rather than riding the request trace.
		ctx, root := e.cfg.Tracer.StartRoot(e.rootCtx, "engine.reinfer_job", trace.SpanContext{})
		root.SetAttr("job_id", job.ID)
		err := e.Reinfer(ctx)
		root.RecordError(err)
		root.End()
		e.jobMu.Lock()
		defer e.jobMu.Unlock()
		if err != nil {
			job.State = deploy.JobFailed
			job.Error = err.Error()
			return
		}
		job.State = deploy.JobDone
		job.Inferred = len(e.InferredLocations())
	}()
	return js, nil
}

// ReinferStatus reports the latest background job; ok is false before the
// first StartReinfer.
func (e *Engine) ReinferStatus() (deploy.JobStatus, bool) {
	e.jobMu.Lock()
	defer e.jobMu.Unlock()
	if e.job == nil {
		return deploy.JobStatus{}, false
	}
	return *e.job, true
}

// publish swaps a fully built serving state in: the store's fallback chain
// is frozen off-lock first, then the state pointer and the frozen read path
// flip together. Readers racing the swap see either the old chain or the new
// one in full, never a mix — a FrozenStore is immutable once published.
// After the swap, the outgoing frozen store is diffed against the incoming
// one into a churn report (kind: reinfer or restore) — off the serving path,
// which has already moved on.
func (e *Engine) publish(st *state, kind string) {
	frozen := st.store.Freeze()
	e.stateMu.Lock()
	e.st = st
	e.stateMu.Unlock()
	old := e.frozen.Load()
	e.frozen.Store(frozen)
	hotSwaps.Inc()
	e.churnReport(old, frozen, kind)
}

// Query answers from the currently served frozen store: one atomic pointer
// load plus one map lookup, no locks and zero allocations. It returns
// SourceNone before the first completed re-inference or snapshot restore —
// queries never wait on retraining.
func (e *Engine) Query(addr model.AddressID) (geo.Point, deploy.Source) {
	a, _ := e.frozen.Load().Lookup(addr)
	countQuery(a.Src)
	if a.Conf > 0 && a.Conf < e.lowConf {
		lowConfQueries.Inc()
	}
	return a.Loc, a.Src
}

// QueryBatch answers every key of addrs into out (input order preserved),
// loading the frozen store once for the whole batch. It checks ctx between
// chunks so a caller that gave up mid-batch stops paying for the rest.
func (e *Engine) QueryBatch(ctx context.Context, addrs []model.AddressID, out []deploy.BatchAnswer) ([]deploy.BatchAnswer, error) {
	out = deploy.GrowAnswers(out, len(addrs))
	err := e.queryBatchIdx(ctx, addrs, nil, out)
	return out, err
}

// queryBatchChunk is how many keys a batch worker answers between
// cooperative ctx checks: large enough to amortize the check, small enough
// that cancellation lands promptly.
const queryBatchChunk = 512

// QueryBatchIdx is the shard-backend form of the bulk read path: it answers
// addrs[i] into out[i] for each position i in idx (idx nil: all of addrs),
// leaving every other slot of out untouched. It is what a sharded fan-out
// calls per backend so workers can write disjoint slots of one shared result
// slice — see cluster.ShardBackend.
func (e *Engine) QueryBatchIdx(ctx context.Context, addrs []model.AddressID, idx []int32, out []deploy.BatchAnswer) error {
	return e.queryBatchIdx(ctx, addrs, idx, out)
}

// queryBatchIdx answers addrs[i] into out[i] for each i in idx (idx nil: all
// of addrs) from a single frozen-store load. Per-source metrics are tallied
// locally and flushed in bulk so the per-key cost stays one map lookup.
func (e *Engine) queryBatchIdx(ctx context.Context, addrs []model.AddressID, idx []int32, out []deploy.BatchAnswer) error {
	f := e.frozen.Load()
	var tally [deploy.SourceNone + 1]int64
	var lowConf int64
	n := len(addrs)
	if idx != nil {
		n = len(idx)
	}
	for base := 0; base < n; base += queryBatchChunk {
		if err := ctx.Err(); err != nil {
			flushQueryTally(&tally)
			lowConfQueries.Add(lowConf)
			return err
		}
		end := base + queryBatchChunk
		if end > n {
			end = n
		}
		if idx == nil {
			for i := base; i < end; i++ {
				a, _ := f.Lookup(addrs[i])
				out[i].Loc, out[i].Src = a.Loc, a.Src
				tally[a.Src]++
				if a.Conf > 0 && a.Conf < e.lowConf {
					lowConf++
				}
			}
		} else {
			for _, i := range idx[base:end] {
				a, _ := f.Lookup(addrs[i])
				out[i].Loc, out[i].Src = a.Loc, a.Src
				tally[a.Src]++
				if a.Conf > 0 && a.Conf < e.lowConf {
					lowConf++
				}
			}
		}
	}
	flushQueryTally(&tally)
	lowConfQueries.Add(lowConf)
	return nil
}

// InferredLocations returns the served address->location map (nil before
// the first re-inference or restore). The map is part of an immutable
// snapshot; callers must not mutate it.
func (e *Engine) InferredLocations() map[model.AddressID]geo.Point {
	e.stateMu.RLock()
	st := e.st
	e.stateMu.RUnlock()
	if st == nil {
		return nil
	}
	return st.locs
}

// Matcher returns the served trained model (nil before the first
// re-inference or restore without a saved model).
func (e *Engine) Matcher() *core.LocMatcher {
	e.stateMu.RLock()
	st := e.st
	e.stateMu.RUnlock()
	if st == nil {
		return nil
	}
	return st.matcher
}

// Status implements the deploy.Engine health summary.
func (e *Engine) Status() deploy.EngineStatus {
	e.stateMu.RLock()
	st := e.st
	reinfers := e.reinfers
	failed, lastErr := e.failed, e.lastErr
	e.stateMu.RUnlock()
	e.mu.Lock()
	s := deploy.EngineStatus{
		Dataset:      e.name,
		Addresses:    len(e.addrs),
		PendingTrips: e.pending,
		Trips:        len(e.trips),
		OpenStreams:  e.ss.open(),
		Reinfers:     reinfers,
		Failed:       failed,
		LastError:    lastErr,
	}
	if e.pending > 0 && !e.pendingSince.IsZero() {
		s.PendingAgeSeconds = time.Since(e.pendingSince).Seconds()
	}
	e.mu.Unlock()
	if st != nil {
		s.Ready = true
		s.Inferred = len(st.locs)
		if st.pipe != nil {
			s.PoolLocations = len(st.pipe.Pool.Locations)
		}
	}
	e.jobMu.Lock()
	s.ReinferRunning = e.job != nil && e.job.State == deploy.JobRunning
	e.jobMu.Unlock()
	return s
}

// tripCount reports how many trips have been ingested so far; the sharded
// engine uses it to skip re-inference on shards with nothing to train on.
func (e *Engine) tripCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.trips)
}

// setLCTotalTrips overrides the location-commonality trip universe for the
// next Reinfer. The sharded engine sets the global distinct-trip count here
// so each shard's pipeline normalizes Equation (2) exactly like one global
// pipeline over all shards would.
func (e *Engine) setLCTotalTrips(n int) {
	e.mu.Lock()
	e.cfg.Core.LCTotalTrips = n
	e.mu.Unlock()
}

// statically assert that Engine satisfies deploy's interface.
var _ deploy.Engine = (*Engine)(nil)
