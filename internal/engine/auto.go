package engine

import (
	"errors"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/obs"
)

// AutoReinferConfig bounds how stale the served state may grow before a
// re-inference is fired without an operator asking for one. Both thresholds
// read the engine's own status — PendingTrips (backlog size) and
// PendingAgeSeconds (how long the oldest un-served trip has waited) — so the
// monitor drives a sharded or remote-sharded engine exactly like a single
// one.
type AutoReinferConfig struct {
	// MaxPending fires once the pending-trip backlog reaches this size
	// (0 disables the size condition).
	MaxPending int
	// MaxAge fires once the oldest pending trip has waited this long
	// (0 disables the age condition).
	MaxAge time.Duration
	// Interval is the status polling cadence (0 = DefaultAutoReinferInterval).
	Interval time.Duration
}

// DefaultAutoReinferInterval is the monitor's polling cadence when the
// config leaves it zero. Status is a cheap in-memory read (one RPC per shard
// on a frontend), so seconds-scale polling costs nothing next to a retrain.
const DefaultAutoReinferInterval = 5 * time.Second

// enabled reports whether any tripping condition is configured.
func (c AutoReinferConfig) enabled() bool { return c.MaxPending > 0 || c.MaxAge > 0 }

// AutoReinfer is a background monitor that watches an engine's pending
// backlog and starts a re-inference when a threshold trips. Stop it before
// closing the engine.
type AutoReinfer struct {
	stop chan struct{}
	done chan struct{}
}

// StartAutoReinfer launches the monitor over e, or returns nil when cfg has
// no condition enabled (nil's Stop is a no-op, so callers wire it
// unconditionally). The monitor never stacks jobs: while a re-inference is
// running it just keeps watching, and a fire that loses the race to a
// concurrent manual POST /v1/reinfer counts as that job instead.
func StartAutoReinfer(e deploy.Engine, cfg AutoReinferConfig, log *obs.Logger) *AutoReinfer {
	if !cfg.enabled() {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultAutoReinferInterval
	}
	a := &AutoReinfer{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(a.done)
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
			}
			st := e.Status()
			if st.ReinferRunning || st.PendingTrips == 0 {
				continue
			}
			var reason string
			switch {
			case cfg.MaxPending > 0 && st.PendingTrips >= cfg.MaxPending:
				reason = "backlog"
				autoReinferBacklog.Inc()
			case cfg.MaxAge > 0 && st.PendingAgeSeconds >= cfg.MaxAge.Seconds():
				reason = "age"
				autoReinferAge.Inc()
			default:
				continue
			}
			log.Info("auto reinfer fired",
				"reason", reason, "pending", st.PendingTrips, "pending_age_s", st.PendingAgeSeconds)
			if _, err := e.StartReinfer(); err != nil && !errors.Is(err, deploy.ErrReinferRunning) {
				log.Warn("auto reinfer failed to start", "err", err)
			}
		}
	}()
	return a
}

// Stop halts the monitor and waits for its goroutine to exit. Any job the
// monitor already started keeps running; join it through the engine's own
// Close. Stop on a nil monitor is a no-op.
func (a *AutoReinfer) Stop() {
	if a == nil {
		return
	}
	close(a.stop)
	<-a.done
}
