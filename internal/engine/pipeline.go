package engine

import (
	"context"

	"dlinfma/internal/core"
	"dlinfma/internal/model"
)

// BuildPipeline is the one pipeline-construction entry point the rest of
// the repo (eval.Prepare*, baselines.NewEnv, cmds, examples) goes through,
// so pool construction policy lives in a single place instead of being
// hand-wired per caller. Cancelling ctx aborts the pool build and returns
// ctx.Err().
func BuildPipeline(ctx context.Context, ds *model.Dataset, cfg core.Config) (*core.Pipeline, error) {
	return core.NewPipeline(ctx, ds, cfg)
}
