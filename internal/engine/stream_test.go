package engine

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
	"dlinfma/internal/wal"
)

// streamTestConfig keeps extraction deterministic and training fast.
func streamTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Core.Workers = 1
	cfg.Matcher.MaxEpochs = 2
	cfg.Matcher.LR = 1e-3
	return cfg
}

// genTrip builds one courier trip of 90 s dwells (10 s fixes, small jitter)
// at each site, with StartT/EndT pinned to the first/last fix exactly as the
// streaming layer reconstructs them.
func genTrip(rng *rand.Rand, courier model.CourierID, t0 float64, sites ...geo.Point) model.Trip {
	var tr traj.Trajectory
	t := t0
	for _, s := range sites {
		for end := t + 90; t < end; t += 10 {
			tr = append(tr, traj.GPSPoint{
				P: geo.Point{X: s.X + rng.NormFloat64()*2, Y: s.Y + rng.NormFloat64()*2},
				T: t,
			})
		}
		t += 120 // travel gap, well under the 600 s trip-gap bound
	}
	return model.Trip{Courier: courier, StartT: tr[0].T, EndT: tr[len(tr)-1].T, Traj: tr}
}

// streamTrip pushes a trip's fixes one at a time and closes the stream.
func streamTrip(t *testing.T, si deploy.StreamIngestor, tr model.Trip) {
	t.Helper()
	ctx := context.Background()
	for _, p := range tr.Traj {
		if err := si.IngestPoint(ctx, tr.Courier, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := si.CloseStream(ctx, tr.Courier); err != nil {
		t.Fatal(err)
	}
}

// requireSameIngestState asserts two single engines accumulated identical
// ingest state: same trips, same addresses and truth, same candidate pool
// (locations and visit logs), same open streams.
func requireSameIngestState(t *testing.T, want, got *Engine) {
	t.Helper()
	if !reflect.DeepEqual(want.trips, got.trips) {
		t.Fatalf("trips differ: %d vs %d", len(want.trips), len(got.trips))
	}
	if !reflect.DeepEqual(want.addrs, got.addrs) {
		t.Fatalf("addresses differ:\nwant %+v\ngot  %+v", want.addrs, got.addrs)
	}
	if !reflect.DeepEqual(want.truth, got.truth) {
		t.Fatalf("truth differs")
	}
	if want.ss.open() != got.ss.open() {
		t.Fatalf("open streams: want %d, got %d", want.ss.open(), got.ss.open())
	}
	for c, cs := range want.ss.streams {
		gs := got.ss.streams[c]
		if gs == nil || !reflect.DeepEqual(cs.pts, gs.pts) || !reflect.DeepEqual(cs.stays, gs.stays) {
			t.Fatalf("open stream for courier %d differs", c)
		}
	}
	pw, pg := want.builder.Finalize(), got.builder.Finalize()
	if !reflect.DeepEqual(pw.Locations, pg.Locations) {
		t.Fatalf("pool locations differ:\nwant %+v\ngot  %+v", pw.Locations, pg.Locations)
	}
	if !reflect.DeepEqual(pw.Visits, pg.Visits) {
		t.Fatalf("pool visit logs differ")
	}
}

// TestStreamedIngestMatchesBatch is the engine half of the streaming
// bit-identity contract: feeding trips point by point through IngestPoint /
// CloseStream must leave the engine in exactly the state batch ingest of the
// same trips produces — same trips, same pool windows, same visit logs.
func TestStreamedIngestMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sites := []geo.Point{{X: 100, Y: 100}, {X: 140, Y: 100}, {X: 500, Y: 400}, {X: 90, Y: 430}}
	var trips []model.Trip
	t0 := 0.0
	for w := 0; w < 3; w++ { // three pool windows of streamed trips
		for c := 0; c < 4; c++ {
			a, b := sites[rng.Intn(len(sites))], sites[rng.Intn(len(sites))]
			trips = append(trips, genTrip(rng, model.CourierID(c), t0, a, b))
			t0 += 2000
		}
		t0 += 14 * 86400
	}

	batch := New(streamTestConfig())
	defer batch.Close()
	if err := batch.IngestDataset(context.Background(), &model.Dataset{Name: "s", Trips: trips}); err != nil {
		t.Fatal(err)
	}
	streamed := New(streamTestConfig())
	defer streamed.Close()
	for _, tr := range trips {
		streamTrip(t, streamed, tr)
	}

	requireSameIngestState(t, batch, streamed)
	if got := streamed.Status().PendingTrips; got != len(trips) {
		t.Fatalf("PendingTrips = %d, want %d", got, len(trips))
	}
}

// TestStreamGapRuleCutsTrips pins the implicit trip boundary: a gap of
// TripGapSeconds or more between a courier's fixes closes the open trip; an
// explicit CloseStream closes the rest.
func TestStreamGapRuleCutsTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	e := New(streamTestConfig())
	defer e.Close()
	ctx := context.Background()
	first := genTrip(rng, 7, 0, geo.Point{X: 50, Y: 50})
	for _, p := range first.Traj {
		if err := e.IngestPoint(ctx, 7, p); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Status(); st.OpenStreams != 1 || len(e.trips) != 0 {
		t.Fatalf("before gap: open=%d trips=%d", st.OpenStreams, len(e.trips))
	}
	// Next fix lands 900 s after the last one: the gap rule closes trip one.
	second := genTrip(rng, 7, first.EndT+900, geo.Point{X: 300, Y: 50})
	for _, p := range second.Traj {
		if err := e.IngestPoint(ctx, 7, p); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.trips) != 1 {
		t.Fatalf("gap did not close the first trip: %d trips", len(e.trips))
	}
	if tr := e.trips[0]; tr.StartT != first.StartT || tr.EndT != first.EndT || !reflect.DeepEqual(tr.Traj, first.Traj) {
		t.Fatalf("gap-closed trip differs from its fixes: %+v", tr)
	}
	if err := e.CloseStream(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if len(e.trips) != 2 || e.Status().OpenStreams != 0 {
		t.Fatalf("after close: %d trips, %d open", len(e.trips), e.Status().OpenStreams)
	}
	// Closing again is a no-op, not an error.
	if err := e.CloseStream(ctx, 7); err != nil || len(e.trips) != 2 {
		t.Fatalf("idempotent close: err=%v trips=%d", err, len(e.trips))
	}
}

// TestBackpressure pins the bounded-backlog contract: once MaxPendingTrips
// trips await re-inference, live batch and point ingest answer
// deploy.ErrBackpressure (and count the rejection), while address-only
// metadata still flows.
func TestBackpressure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := streamTestConfig()
	cfg.MaxPendingTrips = 2
	e := New(cfg)
	defer e.Close()
	ctx := context.Background()
	site := geo.Point{X: 80, Y: 80}
	win := []model.Trip{genTrip(rng, 0, 0, site), genTrip(rng, 1, 300, site)}
	if err := e.Ingest(ctx, win, nil, nil); err != nil {
		t.Fatal(err)
	}

	before := backpressureRejects.Value()
	err := e.IngestPoint(ctx, 2, traj.GPSPoint{P: site, T: 1000})
	if !errors.Is(err, deploy.ErrBackpressure) {
		t.Fatalf("IngestPoint under backlog: %v, want ErrBackpressure", err)
	}
	err = e.Ingest(ctx, []model.Trip{genTrip(rng, 2, 2000, site)}, nil, nil)
	if !errors.Is(err, deploy.ErrBackpressure) {
		t.Fatalf("Ingest under backlog: %v, want ErrBackpressure", err)
	}
	if got := backpressureRejects.Value() - before; got != 2 {
		t.Fatalf("backpressure rejections counter moved by %d, want 2", got)
	}
	// Metadata-only ingest is never backpressured.
	if err := e.Ingest(ctx, nil, []model.AddressInfo{{ID: 9}}, nil); err != nil {
		t.Fatalf("address-only ingest under backlog: %v", err)
	}
	if e.Status().PendingTrips != 2 {
		t.Fatalf("rejected operations leaked into pending: %d", e.Status().PendingTrips)
	}
}

// TestEngineWALCrashRecovery is the end-to-end durability contract: kill the
// process mid-session (simulated by abandoning the engine and its WAL
// without any orderly shutdown) and a fresh engine replaying the WAL holds
// exactly the state the dead one had — including the still-open stream.
func TestEngineWALCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	live := New(streamTestConfig())
	defer live.Close()
	live.AttachWAL(w)
	ctx := context.Background()

	siteA, siteB := geo.Point{X: 100, Y: 100}, geo.Point{X: 400, Y: 250}
	batchWin := []model.Trip{genTrip(rng, 0, 0, siteA), genTrip(rng, 1, 500, siteB)}
	addrs := []model.AddressInfo{{ID: 1}, {ID: 2}}
	truth := map[model.AddressID]geo.Point{1: siteA}
	if err := live.Ingest(ctx, batchWin, addrs, truth); err != nil {
		t.Fatal(err)
	}
	// Two interleaved courier streams; courier 5 closes, courier 6 stays open.
	t5, t6 := genTrip(rng, 5, 3000, siteA, siteB), genTrip(rng, 6, 3100, siteB)
	for i := 0; i < len(t5.Traj) || i < len(t6.Traj); i++ {
		if i < len(t5.Traj) {
			if err := live.IngestPoint(ctx, 5, t5.Traj[i]); err != nil {
				t.Fatal(err)
			}
		}
		if i < len(t6.Traj) {
			if err := live.IngestPoint(ctx, 6, t6.Traj[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := live.CloseStream(ctx, 5); err != nil {
		t.Fatal(err)
	}
	wantRecords := 1 + len(t5.Traj) + len(t6.Traj) + 1 // ingest + points + end
	if got := w.LastSeq(); got != uint64(wantRecords) {
		t.Fatalf("WAL holds %d records, want %d", got, wantRecords)
	}
	// Crash: no Close on the engine or the WAL.

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered := New(streamTestConfig())
	defer recovered.Close()
	n, err := recovered.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantRecords {
		t.Fatalf("replayed %d records, want %d", n, wantRecords)
	}
	recovered.AttachWAL(w2)
	requireSameIngestState(t, live, recovered)
	if st := recovered.Status(); st.OpenStreams != 1 || st.PendingTrips != 3 {
		t.Fatalf("recovered status: open=%d pending=%d, want 1/3", st.OpenStreams, st.PendingTrips)
	}
	// The recovered engine keeps streaming where the dead one left off:
	// closing courier 6 yields the identical trip on both engines.
	if err := live.CloseStream(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if err := recovered.CloseStream(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.trips, recovered.trips) {
		t.Fatal("post-recovery stream close diverged from the never-crashed engine")
	}
}

// TestWALTruncationAfterSnapshot checks the log-compaction loop: after a
// re-inference and a durable snapshot, WAL segments wholly covered by the
// snapshotted state are dropped, and a restart from snapshot + remaining WAL
// still serves.
func TestWALTruncationAfterSnapshot(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Small segments so ingest spans several and truncation visibly deletes.
	w, err := wal.Open(dir, wal.Options{SegmentBytes: 4096, Policy: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e := New(streamTestConfig())
	defer e.Close()
	e.AttachWAL(w)
	ctx := context.Background()
	if err := e.IngestDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("need several segments to observe truncation, got %d", w.SegmentCount())
	}
	if err := e.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	segsBefore := w.SegmentCount()
	snap := filepath.Join(dir, "snap.json")
	if err := e.SaveSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	if got := w.SegmentCount(); got >= segsBefore {
		t.Fatalf("snapshot did not truncate the WAL: %d segments before, %d after", segsBefore, got)
	}

	// Restart: snapshot restores the serving state, the surviving WAL tail
	// replays without error, and queries answer.
	e2 := New(streamTestConfig())
	defer e2.Close()
	if err := e2.LoadSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ReplayWAL(ctx, w); err != nil {
		t.Fatal(err)
	}
	if !e2.Status().Ready {
		t.Fatal("restarted engine not ready")
	}
}

// TestShardedStreamingCrashRecovery runs the same kill-and-replay contract
// through the sharded engine: one global WAL and stream set on top, shards
// fed deterministically, so a replayed sharded engine matches shard by
// shard.
func TestShardedStreamingCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRouter(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	live := NewSharded(streamTestConfig(), r)
	defer live.Close()
	live.AttachWAL(w)
	ctx := context.Background()

	// Two far-apart regions so both shards see work.
	east, west := geo.Point{X: 50, Y: 50}, geo.Point{X: 90000, Y: 90000}
	addrs := []model.AddressInfo{{ID: 1, Geocode: east}, {ID: 2, Geocode: west}}
	if err := live.Ingest(ctx, []model.Trip{genTrip(rng, 0, 0, east), genTrip(rng, 1, 300, west)}, addrs, nil); err != nil {
		t.Fatal(err)
	}
	streamTrip(t, live, genTrip(rng, 5, 2000, east))
	streamTrip(t, live, genTrip(rng, 6, 2500, west))
	open := genTrip(rng, 7, 3000, east)
	for _, p := range open.Traj {
		if err := live.IngestPoint(ctx, 7, p); err != nil {
			t.Fatal(err)
		}
	}
	if st := live.Status(); st.OpenStreams != 1 || st.PendingTrips != 4 {
		t.Fatalf("live status: open=%d pending=%d, want 1/4", st.OpenStreams, st.PendingTrips)
	}
	// Crash without any orderly shutdown.

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered := NewSharded(streamTestConfig(), r)
	defer recovered.Close()
	if _, err := recovered.ReplayWAL(ctx, w2); err != nil {
		t.Fatal(err)
	}
	recovered.AttachWAL(w2)
	if st := recovered.Status(); st.OpenStreams != 1 || st.PendingTrips != 4 {
		t.Fatalf("recovered status: open=%d pending=%d, want 1/4", st.OpenStreams, st.PendingTrips)
	}
	for i := range live.shards {
		requireSameIngestState(t, live.shards[i], recovered.shards[i])
	}
}
