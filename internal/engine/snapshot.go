package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// snapshot is the serialized serving state: address metadata, inferred
// locations (string-keyed like the dataset file format), and the trained
// matcher via core's own serialization. The candidate pool is not included
// — it is derived from trips, which a snapshot deliberately omits; after a
// restore the engine serves queries immediately but needs fresh ingest
// before the next re-inference.
type snapshot struct {
	// Version identifies the snapshot format. Version 1 (and 0, the
	// pre-versioning legacy encoding) is the single-engine snapshot below;
	// version 2 is the sharded manifest (sharded_snapshot.go). Restore
	// rejects anything else instead of silently mis-decoding.
	Version   int                   `json:"version"`
	Name      string                `json:"name"`
	Addresses []model.AddressInfo   `json:"addresses"`
	Locations map[string][2]float64 `json:"locations"`
	Matcher   json.RawMessage       `json:"matcher,omitempty"`
}

// Snapshot format versions.
const (
	snapshotVersionSingle  = 1
	snapshotVersionSharded = 2
)

// WriteSnapshot streams the current serving state to w. It fails before the
// first completed re-inference or restore.
func (e *Engine) WriteSnapshot(w io.Writer) (err error) {
	defer func() {
		if err != nil {
			snapshotSaveErr.Inc()
		} else {
			snapshotSaveOK.Inc()
		}
	}()
	e.stateMu.RLock()
	st := e.st
	e.stateMu.RUnlock()
	if st == nil {
		return errors.New("engine: nothing to snapshot before the first re-inference")
	}
	e.mu.Lock()
	sn := snapshot{
		Version:   snapshotVersionSingle,
		Name:      e.name,
		Addresses: append([]model.AddressInfo(nil), e.addrs...),
		Locations: make(map[string][2]float64, len(st.locs)),
	}
	e.mu.Unlock()
	for id, p := range st.locs {
		sn.Locations[fmt.Sprint(id)] = [2]float64{p.X, p.Y}
	}
	if st.matcher != nil {
		var buf bytes.Buffer
		if err := st.matcher.Save(&buf); err != nil {
			return err
		}
		sn.Matcher = json.RawMessage(buf.Bytes())
	}
	return json.NewEncoder(w).Encode(&sn)
}

// RestoreSnapshot loads a snapshot written by WriteSnapshot and swaps a
// store-only serving state into place: queries are answered from the
// restored locations (with the building/geocode fallback chain rebuilt from
// the address metadata), and the trained matcher is available again. The
// restored addresses also seed the ingest state so later windows extend the
// same address universe.
func (e *Engine) RestoreSnapshot(r io.Reader) (err error) {
	defer func() {
		if err != nil {
			snapshotRestoreErr.Inc()
		} else {
			snapshotRestoreOK.Inc()
		}
	}()
	var sn snapshot
	if err := json.NewDecoder(r).Decode(&sn); err != nil {
		return fmt.Errorf("engine: decode snapshot: %w", err)
	}
	switch sn.Version {
	case 0, snapshotVersionSingle: // 0 = legacy pre-versioning snapshots
	case snapshotVersionSharded:
		return errors.New("engine: snapshot version 2 is a sharded manifest; restore it with a sharded engine")
	default:
		return fmt.Errorf("engine: unsupported snapshot version %d (max %d)", sn.Version, snapshotVersionSharded)
	}
	store := deploy.NewStore()
	locs := make(map[model.AddressID]geo.Point, len(sn.Locations))
	for _, a := range sn.Addresses {
		store.RegisterAddress(a.ID, a.Building, a.Geocode)
	}
	for k, v := range sn.Locations {
		var id model.AddressID
		if _, err := fmt.Sscan(k, &id); err != nil {
			return fmt.Errorf("engine: bad snapshot location key %q", k)
		}
		p := geo.Point{X: v[0], Y: v[1]}
		store.Put(id, p)
		locs[id] = p
	}
	var matcher *core.LocMatcher
	if len(sn.Matcher) > 0 {
		m, err := core.LoadLocMatcher(bytes.NewReader(sn.Matcher))
		if err != nil {
			return err
		}
		matcher = m
	}

	e.mu.Lock()
	if e.name == "" {
		e.name = sn.Name
	}
	for _, a := range sn.Addresses {
		if !e.addrSeen[a.ID] {
			e.addrSeen[a.ID] = true
			e.addrs = append(e.addrs, a)
		}
	}
	e.mu.Unlock()

	e.publish(&state{matcher: matcher, store: store, locs: locs}, swapKindRestore)
	e.log.Info("snapshot restored",
		"dataset", sn.Name, "addresses", len(sn.Addresses), "locations", len(locs))
	return nil
}

// SaveSnapshotFile writes the snapshot to path atomically and durably
// (temp file + fsync + rename), so a crash mid-write never corrupts the
// previous snapshot and a completed save survives power loss. Once the
// snapshot is durable, WAL segments wholly covered by the snapshotted state
// are dropped.
func (e *Engine) SaveSnapshotFile(path string) error {
	if err := writeFileAtomic(path, e.WriteSnapshot); err != nil {
		return err
	}
	e.maybeTruncateWAL()
	return nil
}

// writeFileAtomic streams write's output into a temp file in path's
// directory, fsyncs it, and renames it over path, then best-effort syncs the
// directory so the rename itself is durable. On any failure the previous
// file at path is untouched.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshotFile restores from a snapshot file written by
// SaveSnapshotFile.
func (e *Engine) LoadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.RestoreSnapshot(f)
}
