package baselines

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/nn"
)

// UNet-based baseline (paper ref [20], customer-location input removed for
// fairness as in Section V-B): rasterize the address's annotated locations
// onto a 9x9 grid of GeoHash-8-sized cells (~32 m x 19 m) centered at the
// cell with the most annotations, then train a small UNet to segment the
// delivery-location pixel. The predicted location is the center of the
// argmax pixel — which caps accuracy at half a cell and fails entirely when
// noisy annotations push the truth outside the 9x9 window, exactly the
// failure modes the paper reports for this baseline.
type UNetBased struct {
	// Cell sizes in meters; defaults approximate GeoHash-8 at Beijing.
	CellW, CellH float64
	// Training hyper-parameters.
	LR       float64
	Epochs   int
	Batch    int
	Patience int
	Seed     int64

	net *unetModel
}

const unetGrid = 9 // 9x9 pixels, as in the paper

// Name implements Method.
func (u *UNetBased) Name() string { return "UNet-based" }

func (u *UNetBased) defaults() {
	if u.CellW == 0 {
		u.CellW = 32
	}
	if u.CellH == 0 {
		u.CellH = 19
	}
	if u.LR == 0 {
		u.LR = 1e-3
	}
	if u.Epochs == 0 {
		u.Epochs = 25
	}
	if u.Batch == 0 {
		u.Batch = 8
	}
	if u.Patience == 0 {
		u.Patience = 4
	}
}

// raster is one address's input image and geometry.
type raster struct {
	img     []float64 // 1 x 9 x 9 annotation density
	originX float64   // world coordinates of pixel (0,0)'s corner
	originY float64
}

// rasterize builds the 9x9 annotation-density image for an address.
func (u *UNetBased) rasterize(env *Env, addr model.AddressID) (raster, bool) {
	u.defaults()
	pts := env.annotationPoints(addr)
	if len(pts) == 0 {
		return raster{}, false
	}
	// Mode cell in global grid coordinates.
	counts := make(map[[2]int]int)
	for _, p := range pts {
		counts[[2]int{int(math.Floor(p.X / u.CellW)), int(math.Floor(p.Y / u.CellH))}]++
	}
	var mode [2]int
	best := -1
	for c, n := range counts {
		if n > best || (n == best && (c[0] < mode[0] || (c[0] == mode[0] && c[1] < mode[1]))) {
			mode, best = c, n
		}
	}
	r := raster{
		img:     make([]float64, unetGrid*unetGrid),
		originX: float64(mode[0]-unetGrid/2) * u.CellW,
		originY: float64(mode[1]-unetGrid/2) * u.CellH,
	}
	maxV := 0.0
	for _, p := range pts {
		px := int(math.Floor((p.X - r.originX) / u.CellW))
		py := int(math.Floor((p.Y - r.originY) / u.CellH))
		if px < 0 || px >= unetGrid || py < 0 || py >= unetGrid {
			continue
		}
		r.img[py*unetGrid+px]++
		if r.img[py*unetGrid+px] > maxV {
			maxV = r.img[py*unetGrid+px]
		}
	}
	if maxV > 0 {
		for i := range r.img {
			r.img[i] /= maxV
		}
	}
	return r, true
}

// pixelOf returns the flat pixel index of a world point, or -1 if outside.
func (u *UNetBased) pixelOf(r raster, p geo.Point) int {
	px := int(math.Floor((p.X - r.originX) / u.CellW))
	py := int(math.Floor((p.Y - r.originY) / u.CellH))
	if px < 0 || px >= unetGrid || py < 0 || py >= unetGrid {
		return -1
	}
	return py*unetGrid + px
}

// pixelCenter returns the world coordinates of a pixel's center.
func (u *UNetBased) pixelCenter(r raster, idx int) geo.Point {
	px, py := idx%unetGrid, idx/unetGrid
	return geo.Point{
		X: r.originX + (float64(px)+0.5)*u.CellW,
		Y: r.originY + (float64(py)+0.5)*u.CellH,
	}
}

// unetModel is a compact UNet: two down levels, a bottleneck, two up levels
// with skip connections, and a 1x1 head.
type unetModel struct {
	enc1, enc2, mid, dec2, dec1, head *nn.ConvLayer
	rng                               *rand.Rand
}

func newUNet(seed int64) *unetModel {
	rng := rand.New(rand.NewSource(seed))
	return &unetModel{
		enc1: nn.NewConvLayer(rng, 1, 8, 3),
		enc2: nn.NewConvLayer(rng, 8, 16, 3),
		mid:  nn.NewConvLayer(rng, 16, 16, 3),
		dec2: nn.NewConvLayer(rng, 32, 16, 3), // mid-up ++ enc2 skip
		dec1: nn.NewConvLayer(rng, 24, 8, 3),  // dec2-up ++ enc1 skip
		head: nn.NewConvLayer(rng, 8, 1, 1),
		rng:  rng,
	}
}

func (m *unetModel) params() []*nn.Tensor {
	var ps []*nn.Tensor
	for _, l := range []*nn.ConvLayer{m.enc1, m.enc2, m.mid, m.dec2, m.dec1, m.head} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// forward maps a [1,9,9] image to [1,9,9] logits.
func (m *unetModel) forward(img *nn.Tensor) *nn.Tensor {
	e1 := nn.ReLU(m.enc1.Forward(img))                       // [8,9,9]
	p1 := nn.MaxPool2D(e1)                                   // [8,5,5]
	e2 := nn.ReLU(m.enc2.Forward(p1))                        // [16,5,5]
	p2 := nn.MaxPool2D(e2)                                   // [16,3,3]
	mid := nn.ReLU(m.mid.Forward(p2))                        // [16,3,3]
	u2 := nn.UpsampleNearest(mid, 5, 5)                      // [16,5,5]
	d2 := nn.ReLU(m.dec2.Forward(nn.ConcatChannels(u2, e2))) // [16,5,5]
	u1 := nn.UpsampleNearest(d2, 9, 9)                       // [16,9,9]
	d1 := nn.ReLU(m.dec1.Forward(nn.ConcatChannels(u1, e1))) // [8,9,9]
	return m.head.Forward(d1)                                // [1,9,9]
}

// Fit implements Method: cross-entropy over the 81 pixels against the
// ground-truth pixel, for train addresses whose truth lies inside the
// window.
func (u *UNetBased) Fit(_ context.Context, env *Env, train, val []model.AddressID) error {
	u.defaults()
	type ex struct {
		r      raster
		target int
	}
	build := func(ids []model.AddressID) []ex {
		var out []ex
		for _, addr := range ids {
			truth, ok := env.DS.Truth[addr]
			if !ok {
				continue
			}
			r, ok := u.rasterize(env, addr)
			if !ok {
				continue
			}
			if t := u.pixelOf(r, truth); t >= 0 {
				out = append(out, ex{r, t})
			}
		}
		return out
	}
	trainEx, valEx := build(train), build(val)
	if len(trainEx) == 0 {
		return errors.New("baselines: UNet has no in-window training examples")
	}
	m := newUNet(u.Seed + 1)
	params := m.params()
	opt := nn.NewAdam(u.LR)
	stopper := nn.NewEarlyStopper(u.Patience)
	best := nn.CloneParams(params)
	rng := rand.New(rand.NewSource(u.Seed + 2))
	idx := make([]int, len(trainEx))
	for i := range idx {
		idx[i] = i
	}
	meanLoss := func(exs []ex) float64 {
		if len(exs) == 0 {
			return math.Inf(1)
		}
		var s float64
		for _, e := range exs {
			logits := m.forward(nn.NewTensor(e.r.img, 1, unetGrid, unetGrid))
			s += nn.PixelCrossEntropy(nn.Reshape(logits, unetGrid*unetGrid), e.target).Value()
		}
		return s / float64(len(exs))
	}
	for epoch := 0; epoch < u.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nn.ZeroGrads(params)
		inBatch := 0
		for _, i := range idx {
			e := trainEx[i]
			logits := m.forward(nn.NewTensor(e.r.img, 1, unetGrid, unetGrid))
			loss := nn.PixelCrossEntropy(nn.Reshape(logits, unetGrid*unetGrid), e.target)
			nn.Backward(loss)
			if inBatch++; inBatch == u.Batch {
				opt.Step(params, float64(inBatch))
				nn.ZeroGrads(params)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(params, float64(inBatch))
			nn.ZeroGrads(params)
		}
		vl := meanLoss(valEx)
		if len(valEx) == 0 {
			vl = meanLoss(trainEx)
		}
		stop, improved := stopper.Observe(vl)
		if improved {
			nn.CopyParams(best, params)
		}
		if stop {
			break
		}
	}
	nn.CopyParams(params, best)
	u.net = m
	return nil
}

// Predict implements Method: the center of the argmax pixel.
func (u *UNetBased) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	r, ok := u.rasterize(env, addr)
	if !ok || u.net == nil {
		return geo.Point{}, false
	}
	logits := u.net.forward(nn.NewTensor(r.img, 1, unetGrid, unetGrid))
	best := 0
	for i, v := range logits.Data {
		if v > logits.Data[best] {
			best = i
		}
	}
	return u.pixelCenter(r, best), true
}
