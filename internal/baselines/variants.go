package baselines

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/nn"
	"dlinfma/internal/tree"
)

// DLInfMA wraps the full method (pipeline + LocMatcher) as a Method. Options
// express the ablations and the Grid/PN variants of Table II.
type DLInfMA struct {
	Label string // display name; "DLInfMA" when empty
	Opt   core.SampleOptions
	Model core.LocMatcherConfig
	// Grid uses the grid-merged candidate pool (DLInfMA-Grid).
	Grid bool

	matcher *core.LocMatcher
}

// NewDLInfMA returns the canonical configuration.
func NewDLInfMA() *DLInfMA {
	return &DLInfMA{Opt: core.DefaultSampleOptions(), Model: core.DefaultLocMatcherConfig()}
}

// Name implements Method.
func (d *DLInfMA) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "DLInfMA"
}

// Fit implements Method. When the model config leaves Workers unset, the
// pipeline's Workers knob is inherited so one -workers flag parallelizes
// both stages.
func (d *DLInfMA) Fit(ctx context.Context, env *Env, train, val []model.AddressID) error {
	samples, err := env.SamplesCtx(ctx, d.Opt, d.Grid)
	if err != nil {
		return err
	}
	cfg := d.Model
	if cfg.Workers == 0 {
		cfg.Workers = env.Pipe.Cfg.Workers
	}
	d.matcher = core.NewLocMatcher(cfg)
	_, err = d.matcher.Fit(ctx, pickSamples(samples, train), pickSamples(samples, val))
	return err
}

// Predict implements Method.
func (d *DLInfMA) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	s := env.Samples(d.Opt, d.Grid)[addr]
	if s == nil || len(s.Cands) == 0 || d.matcher == nil {
		return geo.Point{}, false
	}
	return s.PredictedLocation(d.matcher.Predict(s)), true
}

// ClassifierKind selects the base learner of the classification variants.
type ClassifierKind int

// The three classification variants of Table II.
const (
	KindGBDT ClassifierKind = iota
	KindRF
	KindMLP
)

// Classifier scores each candidate independently with a binary classifier
// over the flattened features and selects the highest-probability candidate
// (Figure 7(a)). Hyper-parameters follow Section V-B: GBDT with 150 stages,
// RF with 400 trees of depth <= 10, MLP with one 16-neuron hidden layer; all
// with 8:2 class weighting.
type Classifier struct {
	Kind ClassifierKind
	Seed int64

	gbdt   *tree.GBDT
	forest *tree.Forest
	mlp    *nn.MLP
}

// Name implements Method.
func (c *Classifier) Name() string {
	switch c.Kind {
	case KindGBDT:
		return "DLInfMA-GBDT"
	case KindRF:
		return "DLInfMA-RF"
	default:
		return "DLInfMA-MLP"
	}
}

// classWeight implements the paper's 8:2 weighting for imbalanced labels.
func classWeight(y float64) float64 {
	if y == 1 {
		return 0.8
	}
	return 0.2
}

// Fit implements Method. ctx is checked via the shared sample build; the
// tree/MLP fits themselves are short and run to completion.
func (c *Classifier) Fit(ctx context.Context, env *Env, train, _ []model.AddressID) error {
	all, err := env.SamplesCtx(ctx, core.DefaultSampleOptions(), false)
	if err != nil {
		return err
	}
	samples := pickSamples(all, train)
	var x [][]float64
	var y, w []float64
	for _, s := range samples {
		for i := range s.Cands {
			label := 0.0
			if i == s.Label {
				label = 1
			}
			x = append(x, s.FlatFeatures(i))
			y = append(y, label)
			w = append(w, classWeight(label))
		}
	}
	if len(x) == 0 {
		return errors.New("baselines: classifier has no training rows")
	}
	switch c.Kind {
	case KindGBDT:
		c.gbdt = tree.FitGBDT(x, y, w, tree.GBDTConfig{Stages: 150, LearningRate: 0.1, Tree: tree.Config{MaxDepth: 3}})
	case KindRF:
		c.forest = tree.FitForest(x, y, w, tree.ForestConfig{NTrees: 400, Tree: tree.Config{MaxDepth: 10}, Seed: c.Seed + 1})
	default:
		rng := rand.New(rand.NewSource(c.Seed + 2))
		c.mlp = nn.NewMLP(rng, core.FlatDim, 16, 1)
		params := c.mlp.Params()
		opt := nn.NewAdam(1e-3)
		idx := rng.Perm(len(x))
		for epoch := 0; epoch < 8; epoch++ {
			nn.ZeroGrads(params)
			inBatch := 0
			for _, i := range idx {
				loss := nn.WeightedBCEWithLogits(c.mlp.Forward(nn.NewTensor(x[i], 1, len(x[i]))), y[i], w[i])
				nn.Backward(loss)
				if inBatch++; inBatch == 32 {
					opt.Step(params, 32)
					nn.ZeroGrads(params)
					inBatch = 0
				}
			}
			if inBatch > 0 {
				opt.Step(params, float64(inBatch))
			}
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
	}
	return nil
}

func (c *Classifier) score(f []float64) float64 {
	switch c.Kind {
	case KindGBDT:
		return c.gbdt.Predict(f)
	case KindRF:
		return c.forest.Predict(f)
	default:
		return c.mlp.Forward(nn.NewTensor(f, 1, len(f))).Value()
	}
}

// Predict implements Method.
func (c *Classifier) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	s := env.Samples(core.DefaultSampleOptions(), false)[addr]
	if s == nil || len(s.Cands) == 0 {
		return geo.Point{}, false
	}
	if (c.Kind == KindGBDT && c.gbdt == nil) || (c.Kind == KindRF && c.forest == nil) || (c.Kind == KindMLP && c.mlp == nil) {
		return geo.Point{}, false
	}
	best, bestScore := 0, c.score(s.FlatFeatures(0))
	for i := 1; i < len(s.Cands); i++ {
		if sc := c.score(s.FlatFeatures(i)); sc > bestScore {
			best, bestScore = i, sc
		}
	}
	return s.Cands[best].Loc, true
}

// RankKind selects the pairwise ranking variant's learner.
type RankKind int

// The two pairwise ranking variants of Table II.
const (
	RankDT RankKind = iota
	RankNet
)

// PairwiseRanker applies the pairwise ranking strategy of Figure 7(b) over
// DLInfMA's candidates: DLInfMA-RkDT uses a decision tree on feature
// differences; DLInfMA-RkNet trains RankNet (a shared scoring tower with a
// logistic pairwise loss, one 16-neuron hidden layer).
type PairwiseRanker struct {
	Kind RankKind
	Seed int64

	dt    *tree.Tree
	tower *nn.MLP
}

// Name implements Method.
func (r *PairwiseRanker) Name() string {
	if r.Kind == RankDT {
		return "DLInfMA-RkDT"
	}
	return "DLInfMA-RkNet"
}

// Fit implements Method.
func (r *PairwiseRanker) Fit(ctx context.Context, env *Env, train, _ []model.AddressID) error {
	all, err := env.SamplesCtx(ctx, core.DefaultSampleOptions(), false)
	if err != nil {
		return err
	}
	samples := pickSamples(all, train)
	type pair struct {
		pos, neg []float64
	}
	var pairs []pair
	for _, s := range samples {
		if len(s.Cands) < 2 {
			continue
		}
		pf := s.FlatFeatures(s.Label)
		for i := range s.Cands {
			if i != s.Label {
				pairs = append(pairs, pair{pos: pf, neg: s.FlatFeatures(i)})
			}
		}
	}
	if len(pairs) == 0 {
		return errors.New("baselines: ranker has no training pairs")
	}
	if r.Kind == RankDT {
		var x [][]float64
		var y []float64
		for _, p := range pairs {
			x = append(x, diffFeats(p.pos, p.neg))
			y = append(y, 1)
			x = append(x, diffFeats(p.neg, p.pos))
			y = append(y, 0)
		}
		r.dt = tree.Fit(x, y, nil, tree.Config{MaxLeafNodes: 1024})
		return nil
	}
	rng := rand.New(rand.NewSource(r.Seed + 3))
	r.tower = nn.NewMLP(rng, core.FlatDim, 16, 1)
	params := r.tower.Params()
	opt := nn.NewAdam(1e-3)
	idx := rng.Perm(len(pairs))
	for epoch := 0; epoch < 10; epoch++ {
		nn.ZeroGrads(params)
		inBatch := 0
		for _, i := range idx {
			p := pairs[i]
			sp := r.tower.Forward(nn.NewTensor(p.pos, 1, len(p.pos)))
			sn := r.tower.Forward(nn.NewTensor(p.neg, 1, len(p.neg)))
			loss := nn.BCEWithLogits(nn.Sub(sp, sn), 1)
			nn.Backward(loss)
			if inBatch++; inBatch == 32 {
				opt.Step(params, 32)
				nn.ZeroGrads(params)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(params, float64(inBatch))
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	return nil
}

// Predict implements Method: voting over all pairwise comparisons.
func (r *PairwiseRanker) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	s := env.Samples(core.DefaultSampleOptions(), false)[addr]
	if s == nil || len(s.Cands) == 0 {
		return geo.Point{}, false
	}
	if len(s.Cands) == 1 {
		return s.Cands[0].Loc, true
	}
	feats := make([][]float64, len(s.Cands))
	for i := range s.Cands {
		feats[i] = s.FlatFeatures(i)
	}
	var beats func(a, b int) bool
	switch {
	case r.Kind == RankDT && r.dt != nil:
		beats = func(a, b int) bool { return r.dt.Predict(diffFeats(feats[a], feats[b])) > 0.5 }
	case r.Kind == RankNet && r.tower != nil:
		score := make([]float64, len(feats))
		for i, f := range feats {
			score[i] = r.tower.Forward(nn.NewTensor(f, 1, len(f))).Value()
		}
		beats = func(a, b int) bool { return score[a] > score[b] }
	default:
		return geo.Point{}, false
	}
	wins := make([]int, len(s.Cands))
	for i := range s.Cands {
		for j := i + 1; j < len(s.Cands); j++ {
			if beats(i, j) {
				wins[i]++
			} else {
				wins[j]++
			}
		}
	}
	best := 0
	for i, w := range wins {
		if w > wins[best] {
			best = i
		}
	}
	return s.Cands[best].Loc, true
}

// Ablation builds the DLInfMA feature-ablation variants of Table II.
func Ablation(name string) (*DLInfMA, error) {
	d := NewDLInfMA()
	d.Label = name
	switch name {
	case "DLInfMA-nTC":
		d.Opt.Mask.TC = false
	case "DLInfMA-nD":
		d.Opt.Mask.Dist = false
	case "DLInfMA-nP":
		d.Opt.Mask.Profile = false
	case "DLInfMA-nLC":
		d.Opt.Mask.LC = false
	case "DLInfMA-nA":
		d.Model.NoContext = true
	case "DLInfMA-LCaddr":
		d.Opt.LCPerAddress = true
	default:
		return nil, fmt.Errorf("baselines: unknown ablation %q", name)
	}
	return d, nil
}

// Variant builds the model variants of Table II by name.
func Variant(name string) (Method, error) {
	switch name {
	case "DLInfMA-GBDT":
		return &Classifier{Kind: KindGBDT}, nil
	case "DLInfMA-RF":
		return &Classifier{Kind: KindRF}, nil
	case "DLInfMA-MLP":
		return &Classifier{Kind: KindMLP}, nil
	case "DLInfMA-RkDT":
		return &PairwiseRanker{Kind: RankDT}, nil
	case "DLInfMA-RkNet":
		return &PairwiseRanker{Kind: RankNet}, nil
	case "DLInfMA-PN":
		d := NewDLInfMA()
		d.Label = name
		d.Model.UseLSTM = true
		d.Model.LSTMHidden = 32
		return d, nil
	case "DLInfMA-Grid":
		d := NewDLInfMA()
		d.Label = name
		d.Grid = true
		return d, nil
	default:
		return Ablation(name)
	}
}

// AllBaselines returns the nine baseline methods of Table II in paper order.
func AllBaselines() []Method {
	return []Method{
		Geocoding{},
		Annotation{},
		GeoCloud{},
		&GeoRank{},
		&UNetBased{},
		MinDist{},
		MaxTC{},
		MaxTCILC{},
		NewDLInfMA(),
	}
}

// AllVariantNames lists the variant and ablation rows of Table II.
func AllVariantNames() []string {
	return []string{
		"DLInfMA-GBDT", "DLInfMA-RF", "DLInfMA-MLP",
		"DLInfMA-RkDT", "DLInfMA-RkNet", "DLInfMA-PN", "DLInfMA-Grid",
		"DLInfMA-nTC", "DLInfMA-nD", "DLInfMA-nP", "DLInfMA-nLC", "DLInfMA-nA",
		"DLInfMA-LCaddr",
	}
}
