package baselines

import (
	"context"
	"errors"
	"math"

	"dlinfma/internal/cluster"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/tree"
)

// GeoRank (paper ref [6]) treats the address's annotated locations as
// delivery-location candidates and trains a pairwise ranking model with a
// decision tree base learner (1024 leaves); at inference the candidate
// winning the most pairwise comparisons is selected. Because its candidates
// come only from annotations, delayed confirmations poison its candidate set
// — the weakness DLInfMA's trajectory-based candidates fix.
type GeoRank struct {
	// ClusterD merges nearby annotations into candidates (40 m default).
	ClusterD float64
	model    *tree.Tree
}

// Name implements Method.
func (g *GeoRank) Name() string { return "GeoRank" }

// annCandidate is one annotation-derived candidate.
type annCandidate struct {
	loc   geo.Point
	feats []float64
}

// annCandidates clusters an address's annotations and featurizes each
// cluster: support fraction, distance to the geocode, mean distance to all
// annotations, and absolute support.
func (g *GeoRank) annCandidates(env *Env, addr model.AddressID) []annCandidate {
	pts := env.annotationPoints(addr)
	if len(pts) == 0 {
		return nil
	}
	d := g.ClusterD
	if d <= 0 {
		d = 40
	}
	info, _ := env.Info(addr)
	var out []annCandidate
	for _, c := range cluster.Hierarchical(pts, d) {
		var meanD float64
		for _, p := range pts {
			meanD += geo.Dist(c.Centroid, p)
		}
		meanD /= float64(len(pts))
		out = append(out, annCandidate{
			loc: c.Centroid,
			feats: []float64{
				float64(len(c.Members)) / float64(len(pts)),
				geo.Dist(c.Centroid, info.Geocode) / 100,
				meanD / 100,
				float64(len(c.Members)),
			},
		})
	}
	return out
}

func diffFeats(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Fit implements Method: pairwise examples (positive minus negative labelled
// 1, the reverse labelled 0) train the decision tree.
func (g *GeoRank) Fit(_ context.Context, env *Env, train, _ []model.AddressID) error {
	var x [][]float64
	var y []float64
	for _, addr := range train {
		truth, ok := env.DS.Truth[addr]
		if !ok {
			continue
		}
		cands := g.annCandidates(env, addr)
		if len(cands) < 2 {
			continue
		}
		pos, posD := -1, math.Inf(1)
		for i, c := range cands {
			if d := geo.Dist(c.loc, truth); d < posD {
				pos, posD = i, d
			}
		}
		for i, c := range cands {
			if i == pos {
				continue
			}
			x = append(x, diffFeats(cands[pos].feats, c.feats))
			y = append(y, 1)
			x = append(x, diffFeats(c.feats, cands[pos].feats))
			y = append(y, 0)
		}
	}
	if len(x) == 0 {
		return errors.New("baselines: GeoRank has no training pairs")
	}
	g.model = tree.Fit(x, y, nil, tree.Config{MaxLeafNodes: 1024})
	return nil
}

// Predict implements Method: round-robin voting among candidates.
func (g *GeoRank) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	cands := g.annCandidates(env, addr)
	switch {
	case len(cands) == 0:
		return geo.Point{}, false
	case len(cands) == 1:
		return cands[0].loc, true
	case g.model == nil:
		return cands[0].loc, true
	}
	wins := make([]int, len(cands))
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if g.model.Predict(diffFeats(cands[i].feats, cands[j].feats)) > 0.5 {
				wins[i]++
			} else {
				wins[j]++
			}
		}
	}
	best := 0
	for i, w := range wins {
		if w > wins[best] {
			best = i
		}
	}
	return cands[best].loc, true
}
