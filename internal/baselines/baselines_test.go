package baselines

import (
	"context"
	"math"
	"testing"

	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

var testEnv struct {
	env   *Env
	ds    *model.Dataset
	w     *synth.World
	split synth.Split
}

func env(t *testing.T) *Env {
	t.Helper()
	if testEnv.env == nil {
		ds, w, err := synth.Generate(synth.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		testEnv.ds, testEnv.w = ds, w
		testEnv.split = synth.SplitSpatial(ds, w, 0.6, 0.2)
		e, err := NewEnv(context.Background(), ds, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		testEnv.env = e
	}
	return testEnv.env
}

// anyDeliveredAddr returns an address that appears in some trip.
func anyDeliveredAddr(t *testing.T, e *Env) model.AddressID {
	t.Helper()
	for _, tr := range e.DS.Trips {
		if len(tr.Waybills) > 0 {
			return tr.Waybills[0].Addr
		}
	}
	t.Fatal("no delivered address")
	return 0
}

func TestAnnotationsComputedFromRecordedTimes(t *testing.T) {
	e := env(t)
	anns := e.Annotations()
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
	total := 0
	for _, as := range anns {
		total += len(as)
	}
	if total != e.DS.Deliveries() {
		t.Errorf("annotations %d != waybills %d", total, e.DS.Deliveries())
	}
	// Annotated location equals the trajectory position at the recorded
	// time for a sampled trip.
	tr := e.DS.Trips[0]
	w := tr.Waybills[0]
	want := tr.Traj.At(w.RecordedDeliveryT)
	found := false
	for _, a := range anns[w.Addr] {
		if a.T == w.RecordedDeliveryT && a.Loc == want {
			found = true
		}
	}
	if !found {
		t.Error("annotation for first waybill not found at recorded time")
	}
}

func TestSimpleBaselinesPredict(t *testing.T) {
	e := env(t)
	addr := anyDeliveredAddr(t, e)
	for _, m := range []Method{Geocoding{}, Annotation{}, GeoCloud{}, MinDist{}, MaxTC{}, MaxTCILC{}} {
		if err := m.Fit(context.Background(), e, testEnv.split.Train, testEnv.split.Val); err != nil {
			t.Fatalf("%s fit: %v", m.Name(), err)
		}
		p, ok := m.Predict(e, addr)
		if !ok {
			t.Fatalf("%s: no prediction for delivered address", m.Name())
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("%s: NaN prediction", m.Name())
		}
	}
}

func TestSimpleBaselinesUnknownAddress(t *testing.T) {
	e := env(t)
	const unknown = model.AddressID(999999)
	for _, m := range []Method{Annotation{}, GeoCloud{}, MinDist{}, MaxTC{}, MaxTCILC{}} {
		if _, ok := m.Predict(e, unknown); ok {
			t.Errorf("%s predicted for unknown address", m.Name())
		}
	}
}

func TestMinDistPicksNearestCandidate(t *testing.T) {
	e := env(t)
	addr := anyDeliveredAddr(t, e)
	s := e.Samples(core.DefaultSampleOptions(), false)[addr]
	if s == nil {
		t.Skip("address has no sample")
	}
	p, ok := MinDist{}.Predict(e, addr)
	if !ok {
		t.Fatal("no prediction")
	}
	for _, c := range s.Cands {
		if geo.Dist(c.Loc, s.Geocode) < geo.Dist(p, s.Geocode)-1e-9 {
			t.Fatal("MinDist did not pick the nearest candidate")
		}
	}
}

func TestGeoRankFitAndPredict(t *testing.T) {
	e := env(t)
	g := &GeoRank{}
	if err := g.Fit(context.Background(), e, testEnv.split.Train, testEnv.split.Val); err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	for _, addr := range testEnv.split.Test {
		truth, ok := e.DS.Truth[addr]
		if !ok {
			continue
		}
		p, ok := g.Predict(e, addr)
		if !ok {
			continue
		}
		total++
		if geo.Dist(p, truth) < 50 {
			hits++
		}
	}
	if total == 0 {
		t.Fatal("no predictions")
	}
	if frac := float64(hits) / float64(total); frac < 0.3 {
		t.Errorf("GeoRank within-50m rate %.2f too low", frac)
	}
}

func TestUNetRasterGeometry(t *testing.T) {
	e := env(t)
	u := &UNetBased{}
	addr := anyDeliveredAddr(t, e)
	r, ok := u.rasterize(e, addr)
	if !ok {
		t.Fatal("no raster")
	}
	// Image is normalized to [0,1] with at least one 1.
	maxV := 0.0
	for _, v := range r.img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel value %v out of range", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV != 1 {
		t.Errorf("max pixel %v, want 1", maxV)
	}
	// pixelOf and pixelCenter are inverse-consistent.
	for _, idx := range []int{0, 40, 80} {
		c := u.pixelCenter(r, idx)
		if got := u.pixelOf(r, c); got != idx {
			t.Errorf("pixelOf(pixelCenter(%d)) = %d", idx, got)
		}
	}
	// A point far outside the window maps to -1.
	far := geo.Point{X: r.originX - 1000, Y: r.originY}
	if u.pixelOf(r, far) != -1 {
		t.Error("far point mapped inside the window")
	}
}

func TestUNetTrainsAndPredicts(t *testing.T) {
	e := env(t)
	u := &UNetBased{Epochs: 4, Patience: 2}
	if err := u.Fit(context.Background(), e, testEnv.split.Train, testEnv.split.Val); err != nil {
		t.Fatal(err)
	}
	addr := anyDeliveredAddr(t, e)
	p, ok := u.Predict(e, addr)
	if !ok {
		t.Fatal("no prediction")
	}
	// The prediction is a pixel center inside the address's 9x9 window.
	r, _ := u.rasterize(e, addr)
	if u.pixelOf(r, p) < 0 {
		t.Error("prediction outside the raster window")
	}
}

func TestClassifierVariants(t *testing.T) {
	e := env(t)
	for _, kind := range []ClassifierKind{KindGBDT, KindMLP} { // RF is slow; covered below
		c := &Classifier{Kind: kind}
		if err := c.Fit(context.Background(), e, testEnv.split.Train, testEnv.split.Val); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		addr := anyDeliveredAddr(t, e)
		if _, ok := c.Predict(e, addr); !ok {
			t.Fatalf("%s: no prediction", c.Name())
		}
	}
}

func TestRandomForestVariantSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("RF variant is slow")
	}
	e := env(t)
	c := &Classifier{Kind: KindRF}
	if err := c.Fit(context.Background(), e, testEnv.split.Train[:min(40, len(testEnv.split.Train))], nil); err != nil {
		t.Fatal(err)
	}
	if c.Name() != "DLInfMA-RF" {
		t.Errorf("name %q", c.Name())
	}
	addr := anyDeliveredAddr(t, e)
	if _, ok := c.Predict(e, addr); !ok {
		t.Fatal("no prediction")
	}
}

func TestPairwiseRankers(t *testing.T) {
	e := env(t)
	for _, kind := range []RankKind{RankDT, RankNet} {
		r := &PairwiseRanker{Kind: kind}
		if err := r.Fit(context.Background(), e, testEnv.split.Train, testEnv.split.Val); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		addr := anyDeliveredAddr(t, e)
		if _, ok := r.Predict(e, addr); !ok {
			t.Fatalf("%s: no prediction", r.Name())
		}
	}
}

func TestDLInfMAVariantsConstructible(t *testing.T) {
	for _, name := range AllVariantNames() {
		m, err := Variant(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Variant(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := Variant("nonsense"); err == nil {
		t.Error("expected error for unknown variant")
	}
}

func TestAblationMasks(t *testing.T) {
	cases := map[string]func(*DLInfMA) bool{
		"DLInfMA-nTC":    func(d *DLInfMA) bool { return !d.Opt.Mask.TC },
		"DLInfMA-nD":     func(d *DLInfMA) bool { return !d.Opt.Mask.Dist },
		"DLInfMA-nP":     func(d *DLInfMA) bool { return !d.Opt.Mask.Profile },
		"DLInfMA-nLC":    func(d *DLInfMA) bool { return !d.Opt.Mask.LC },
		"DLInfMA-nA":     func(d *DLInfMA) bool { return d.Model.NoContext },
		"DLInfMA-LCaddr": func(d *DLInfMA) bool { return d.Opt.LCPerAddress },
	}
	for name, check := range cases {
		d, err := Ablation(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !check(d) {
			t.Errorf("%s: option not applied", name)
		}
	}
}

func TestDLInfMAEndToEnd(t *testing.T) {
	e := env(t)
	d := NewDLInfMA()
	d.Model.MaxEpochs = 10
	d.Model.LR = 1e-3
	if err := d.Fit(context.Background(), e, testEnv.split.Train, testEnv.split.Val); err != nil {
		t.Fatal(err)
	}
	addr := anyDeliveredAddr(t, e)
	if _, ok := d.Predict(e, addr); !ok {
		t.Fatal("no prediction")
	}
	// Unknown address: no prediction.
	if _, ok := d.Predict(e, model.AddressID(999999)); ok {
		t.Error("predicted for unknown address")
	}
}

func TestEnvSampleCaching(t *testing.T) {
	e := env(t)
	a := e.Samples(core.DefaultSampleOptions(), false)
	b := e.Samples(core.DefaultSampleOptions(), false)
	if len(a) == 0 {
		t.Fatal("no samples")
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("sample cache returned different objects")
		}
		break
	}
	// Different options are cached separately.
	opt := core.DefaultSampleOptions()
	opt.Mask.TC = false
	c := e.Samples(opt, false)
	for k, s := range a {
		if c[k] == s {
			t.Fatal("different options share cache entries")
		}
		break
	}
}

func TestAllBaselinesList(t *testing.T) {
	ms := AllBaselines()
	if len(ms) != 9 {
		t.Fatalf("got %d baselines, want 9", len(ms))
	}
	want := []string{"Geocoding", "Annotation", "GeoCloud", "GeoRank", "UNet-based", "MinDist", "MaxTC", "MaxTC-ILC", "DLInfMA"}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Errorf("baseline %d = %q, want %q", i, m.Name(), want[i])
		}
	}
}
