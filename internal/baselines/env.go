// Package baselines implements every comparison method of the paper's
// Table II/III: the Geocoding, Annotation, GeoCloud, GeoRank, UNet-based,
// MinDist, MaxTC and MaxTC-ILC baselines, plus the DLInfMA variants
// (classification with GBDT/RF/MLP, pairwise ranking with decision trees and
// RankNet, the LSTM pointer-network encoder, grid-merged candidates) and the
// feature ablations. All methods share one Env so expensive artefacts —
// the candidate pool, featurized samples, annotated locations — are computed
// once per dataset.
package baselines

import (
	"context"

	"dlinfma/internal/core"
	"dlinfma/internal/engine"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// Method is one delivery-location inference method under evaluation.
type Method interface {
	Name() string
	// Fit trains on the labelled train/val addresses. Heuristic methods
	// ignore the supervision and return nil. Cancelling ctx aborts training
	// and returns ctx.Err().
	Fit(ctx context.Context, env *Env, train, val []model.AddressID) error
	// Predict returns the inferred delivery location of an address. ok is
	// false when the method has no basis for a prediction (the evaluation
	// then falls back to the geocode, as the deployed system does).
	Predict(env *Env, addr model.AddressID) (geo.Point, bool)
}

// Env bundles a dataset with lazily computed shared artefacts.
type Env struct {
	DS   *model.Dataset
	Pipe *core.Pipeline

	// gridPipe is the DLInfMA-Grid variant's pipeline (grid-merged pool).
	gridPipe *core.Pipeline

	samples map[sampleKey]map[model.AddressID]*core.Sample
	annots  map[model.AddressID][]annotation
	addrs   map[model.AddressID]model.AddressInfo
}

type sampleKey struct {
	opt  core.SampleOptions
	grid bool
}

// annotation is one annotated delivery location: the courier's position at
// the recorded confirmation time — what the annotation-based related work
// ([5], [6], [19], [20]) consumes. With delayed confirmations these points
// drift arbitrarily far from the actual delivery location.
type annotation struct {
	Loc geo.Point
	T   float64
}

// NewEnv builds the environment, constructing the main DLInfMA pipeline
// through the engine layer. Cancelling ctx aborts the pool build.
func NewEnv(ctx context.Context, ds *model.Dataset, cfg core.Config) (*Env, error) {
	pipe, err := engine.BuildPipeline(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	return NewEnvWithPipeline(ds, pipe), nil
}

// NewEnvWithPipeline wires a prebuilt pipeline.
func NewEnvWithPipeline(ds *model.Dataset, pipe *core.Pipeline) *Env {
	e := &Env{
		DS:      ds,
		Pipe:    pipe,
		samples: make(map[sampleKey]map[model.AddressID]*core.Sample),
		addrs:   make(map[model.AddressID]model.AddressInfo, len(ds.Addresses)),
	}
	for _, a := range ds.Addresses {
		e.addrs[a.ID] = a
	}
	return e
}

// Info returns the address metadata.
func (e *Env) Info(addr model.AddressID) (model.AddressInfo, bool) {
	a, ok := e.addrs[addr]
	return a, ok
}

// GridPipe returns (building on demand) the DLInfMA-Grid pipeline.
// Cancelling ctx aborts a pending build; a cached pipeline returns
// immediately.
func (e *Env) GridPipe(ctx context.Context) (*core.Pipeline, error) {
	if e.gridPipe == nil {
		cfg := e.Pipe.Cfg
		cfg.UseGridMerge = true
		pipe, err := engine.BuildPipeline(ctx, e.DS, cfg)
		if err != nil {
			return nil, err
		}
		e.gridPipe = pipe
	}
	return e.gridPipe, nil
}

// Samples returns the featurized, labelled samples for the given options,
// keyed by address. Results are cached. It is SamplesCtx with a background
// context (which cannot be cancelled, so no error can occur).
func (e *Env) Samples(opt core.SampleOptions, grid bool) map[model.AddressID]*core.Sample {
	m, _ := e.SamplesCtx(context.Background(), opt, grid)
	return m
}

// SamplesCtx is Samples with cooperative cancellation through sample
// featurization and the on-demand grid pool build.
func (e *Env) SamplesCtx(ctx context.Context, opt core.SampleOptions, grid bool) (map[model.AddressID]*core.Sample, error) {
	key := sampleKey{opt: opt, grid: grid}
	if m, ok := e.samples[key]; ok {
		return m, nil
	}
	pipe := e.Pipe
	if grid {
		var err error
		if pipe, err = e.GridPipe(ctx); err != nil {
			return nil, err
		}
	}
	ids := make([]model.AddressID, len(e.DS.Addresses))
	for i, a := range e.DS.Addresses {
		ids[i] = a.ID
	}
	samples, err := pipe.BuildSamplesCtx(ctx, ids, opt)
	if err != nil {
		return nil, err
	}
	m := make(map[model.AddressID]*core.Sample)
	for _, s := range samples {
		m[s.Addr] = s
	}
	core.LabelSamplesMap(m, e.DS.Truth)
	e.samples[key] = m
	return m, nil
}

// Annotations returns, per address, the courier positions at the recorded
// confirmation times across all historical deliveries.
func (e *Env) Annotations() map[model.AddressID][]annotation {
	if e.annots != nil {
		return e.annots
	}
	e.annots = make(map[model.AddressID][]annotation)
	for _, tr := range e.DS.Trips {
		for _, w := range tr.Waybills {
			e.annots[w.Addr] = append(e.annots[w.Addr], annotation{
				Loc: tr.Traj.At(w.RecordedDeliveryT),
				T:   w.RecordedDeliveryT,
			})
		}
	}
	return e.annots
}

// annotationPoints returns just the points of an address's annotations.
func (e *Env) annotationPoints(addr model.AddressID) []geo.Point {
	anns := e.Annotations()[addr]
	pts := make([]geo.Point, len(anns))
	for i, a := range anns {
		pts[i] = a.Loc
	}
	return pts
}

// pickSamples splits a sample map by address list, keeping only labelled
// samples (for training).
func pickSamples(m map[model.AddressID]*core.Sample, ids []model.AddressID) []*core.Sample {
	var out []*core.Sample
	for _, id := range ids {
		if s, ok := m[id]; ok && s.Label >= 0 {
			out = append(out, s)
		}
	}
	return out
}
