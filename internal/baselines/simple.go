package baselines

import (
	"context"
	"math"

	"dlinfma/internal/cluster"
	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// Geocoding predicts the geocoded waybill location — the industry default
// the paper improves upon.
type Geocoding struct{}

// Name implements Method.
func (Geocoding) Name() string { return "Geocoding" }

// Fit implements Method (no training).
func (Geocoding) Fit(context.Context, *Env, []model.AddressID, []model.AddressID) error { return nil }

// Predict implements Method.
func (Geocoding) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	info, ok := env.Info(addr)
	return info.Geocode, ok
}

// Annotation (paper ref [5]) predicts the spatial centroid of the address's
// annotated locations.
type Annotation struct{}

// Name implements Method.
func (Annotation) Name() string { return "Annotation" }

// Fit implements Method (no training).
func (Annotation) Fit(context.Context, *Env, []model.AddressID, []model.AddressID) error { return nil }

// Predict implements Method.
func (Annotation) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	pts := env.annotationPoints(addr)
	if len(pts) == 0 {
		return geo.Point{}, false
	}
	return geo.Centroid(pts), true
}

// GeoCloud (paper ref [19]) runs DBSCAN over the annotated locations and
// predicts the centroid of the largest cluster, filtering mis-annotations
// when they are a minority. The paper sets min points to 1 so that rarely
// delivered addresses still produce a cluster.
type GeoCloud struct {
	// Eps is the DBSCAN radius in meters (30 m default).
	Eps float64
}

// Name implements Method.
func (GeoCloud) Name() string { return "GeoCloud" }

// Fit implements Method (no training).
func (GeoCloud) Fit(context.Context, *Env, []model.AddressID, []model.AddressID) error { return nil }

// Predict implements Method.
func (g GeoCloud) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	pts := env.annotationPoints(addr)
	if len(pts) == 0 {
		return geo.Point{}, false
	}
	eps := g.Eps
	if eps <= 0 {
		eps = 30
	}
	c, _ := cluster.LargestDBSCANCluster(pts, eps, 1)
	return c, true
}

// MinDist predicts the DLInfMA location candidate nearest the geocoded
// waybill location.
type MinDist struct{}

// Name implements Method.
func (MinDist) Name() string { return "MinDist" }

// Fit implements Method (no training).
func (MinDist) Fit(context.Context, *Env, []model.AddressID, []model.AddressID) error { return nil }

// Predict implements Method.
func (MinDist) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	s := env.Samples(core.DefaultSampleOptions(), false)[addr]
	if s == nil || len(s.Cands) == 0 {
		return geo.Point{}, false
	}
	best, bestD := 0, math.Inf(1)
	for i, c := range s.Cands {
		if c.Dist < bestD {
			best, bestD = i, c.Dist
		}
	}
	return s.Cands[best].Loc, true
}

// MaxTC predicts the candidate with maximum trip coverage; ties break toward
// the candidate closer to the geocode.
type MaxTC struct{}

// Name implements Method.
func (MaxTC) Name() string { return "MaxTC" }

// Fit implements Method (no training).
func (MaxTC) Fit(context.Context, *Env, []model.AddressID, []model.AddressID) error { return nil }

// Predict implements Method.
func (MaxTC) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	s := env.Samples(core.DefaultSampleOptions(), false)[addr]
	if s == nil || len(s.Cands) == 0 {
		return geo.Point{}, false
	}
	best := 0
	for i, c := range s.Cands {
		// First-max tie-break: the paper's MaxTC knows nothing but TC.
		if c.TC > s.Cands[best].TC {
			best = i
		}
	}
	return s.Cands[best].Loc, true
}

// MaxTCILC predicts the candidate maximizing TC-ILC (Equation (5)), the
// TF-IDF-inspired score TC x 1/LC. A small epsilon keeps zero-LC candidates
// finite while still dominating.
type MaxTCILC struct{}

// Name implements Method.
func (MaxTCILC) Name() string { return "MaxTC-ILC" }

// Fit implements Method (no training).
func (MaxTCILC) Fit(context.Context, *Env, []model.AddressID, []model.AddressID) error { return nil }

// Predict implements Method.
func (MaxTCILC) Predict(env *Env, addr model.AddressID) (geo.Point, bool) {
	s := env.Samples(core.DefaultSampleOptions(), false)[addr]
	if s == nil || len(s.Cands) == 0 {
		return geo.Point{}, false
	}
	// Equation (5) with add-one smoothing: the literal TC x 1/LC diverges at
	// LC = 0 and lets rarely visited locations that happen to co-occur only
	// with this building outscore the true location. TC/(1+LC) keeps the
	// intended monotone LC penalty (the station with LC near 1 loses half
	// its score) while staying finite.
	best, bestScore := 0, -1.0
	for i, c := range s.Cands {
		score := c.TC / (1 + c.LC)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return s.Cands[best].Loc, true
}
